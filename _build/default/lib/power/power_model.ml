(* Mobile-device power model (our Monsoon Power Monitor substitute).

   Section 5.2 names the states and levels observed on the Galaxy S5:
   "about 300mW for idle state, 1350mW for waiting signals, 2000mW for
   data reception, and 2000mW to 5000mW for data transmission"; the
   slow network's radio draws less while handling remote I/O (~1700mW
   vs ~2000mW, Figure 8(b)/(c)).  Local computation power depends on
   CPU intensity; we use a representative active level. *)

type state =
  | Idle              (* screen-off baseline *)
  | Computing         (* CPU executing locally *)
  | Waiting           (* waiting for the server, radio associated *)
  | Receiving         (* receiving data *)
  | Transmitting      (* transmitting data *)
  | Remote_io_service (* servicing remote I/O requests from the server *)

type t = {
  idle_mw : float;
  computing_mw : float;
  waiting_mw : float;
  receiving_mw : float;
  transmitting_mw : float;
  remote_io_mw : float;
}

(* [remote_io_mw] depends on the radio: the 802.11ac radio draws more
   while servicing a continuous stream of small requests. *)
let galaxy_s5 ~fast_radio = {
  idle_mw = 300.0;
  computing_mw = 3200.0;
  waiting_mw = 1350.0;
  receiving_mw = 2000.0;
  transmitting_mw = 3500.0;
  remote_io_mw = (if fast_radio then 2000.0 else 1700.0);
}

let draw_mw t state =
  match state with
  | Idle -> t.idle_mw
  | Computing -> t.computing_mw
  | Waiting -> t.waiting_mw
  | Receiving -> t.receiving_mw
  | Transmitting -> t.transmitting_mw
  | Remote_io_service -> t.remote_io_mw

let state_to_string = function
  | Idle -> "idle"
  | Computing -> "computing"
  | Waiting -> "waiting"
  | Receiving -> "receiving"
  | Transmitting -> "transmitting"
  | Remote_io_service -> "remote-io"
