lib/power/battery.mli: Power_model
