lib/power/power_model.ml:
