lib/power/battery.ml: Hashtbl List Option Power_model
