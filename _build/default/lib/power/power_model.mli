(** Mobile-device power model — the Monsoon Power Monitor substitute.

    §5.2 names the Galaxy S5's levels: "about 300mW for idle state,
    1350mW for waiting signals, 2000mW for data reception, and 2000mW
    to 5000mW for data transmission"; remote-I/O service draws ~2000mW
    on the 802.11ac radio and ~1700mW on 802.11n (Figure 8(b)/(c)). *)

type state =
  | Idle
  | Computing           (** CPU executing locally *)
  | Waiting             (** waiting for the server, radio associated *)
  | Receiving
  | Transmitting
  | Remote_io_service   (** servicing the server's remote I/O requests *)

type t = {
  idle_mw : float;
  computing_mw : float;
  waiting_mw : float;
  receiving_mw : float;
  transmitting_mw : float;
  remote_io_mw : float;
}

val galaxy_s5 : fast_radio:bool -> t
(** The paper's handset; [fast_radio] selects the remote-I/O level
    (2000 mW on 802.11ac, 1700 mW on 802.11n). *)

val draw_mw : t -> state -> float
val state_to_string : state -> string
