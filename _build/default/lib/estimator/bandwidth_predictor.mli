(** Bandwidth prediction from observed transfers (the NWSLite-style
    extension of the paper's Section 6).

    The communication manager reports every physical transfer; a
    size-weighted exponentially-moving average over the observed
    throughput feeds the dynamic estimator, so offload decisions adapt
    when the real link diverges from the configured one. *)

type t

val create :
  ?alpha:float -> ?min_sample_bytes:int -> initial_bps:float -> unit -> t
(** [create ~initial_bps ()] starts believing [initial_bps].  [alpha]
    (default 0.35) is the EWMA weight per 64 KiB observed;
    [min_sample_bytes] (default 2048) discards control-message noise.
    @raise Invalid_argument if [initial_bps <= 0]. *)

val observe : t -> bytes:int -> seconds:float -> unit
(** Report one physical transfer of [bytes] that took [seconds].
    Samples smaller than [min_sample_bytes] are ignored; larger
    transfers move the belief proportionally further. *)

val predict_bps : t -> float
(** Current belief, bits per second. *)

val sample_count : t -> int
(** Accepted observations so far. *)
