(* Equation 1 of the paper:

     Tg = (Tm - Ts) - Tc
        = Tm * (1 - 1/R) - 2 * (M / BW) * Ninvo

   Tm: mobile execution time of the task; R: server/mobile performance
   ratio; M: memory the task uses (bytes); BW: network bandwidth
   (bits/s); Ninvo: invocation count.  The shared data crosses the
   network twice per invocation (mobile->server, server->mobile),
   hence the factor 2. *)

type inputs = {
  tm_s : float;          (* mobile execution time, seconds *)
  r : float;             (* performance ratio *)
  mem_bytes : int;       (* M *)
  bw_bps : float;        (* BW, bits per second *)
  invocations : int;     (* Ninvo *)
}

type breakdown = {
  ideal_gain_s : float;  (* Tm * (1 - 1/R) *)
  comm_cost_s : float;   (* 2 * M/BW * Ninvo *)
  gain_s : float;        (* ideal - comm *)
}

let evaluate { tm_s; r; mem_bytes; bw_bps; invocations } : breakdown =
  if r <= 0.0 then invalid_arg "Equation.evaluate: non-positive ratio";
  if bw_bps <= 0.0 then invalid_arg "Equation.evaluate: non-positive bandwidth";
  let ideal_gain_s = tm_s *. (1.0 -. (1.0 /. r)) in
  let comm_cost_s =
    2.0 *. (float_of_int mem_bytes *. 8.0 /. bw_bps) *. float_of_int invocations
  in
  { ideal_gain_s; comm_cost_s; gain_s = ideal_gain_s -. comm_cost_s }

let profitable inputs = (evaluate inputs).gain_s > 0.0
