(* Bandwidth prediction from observed transfers.

   The paper's related work (Section 6) points at Wolski et al. and
   NWSLite: "bandwidth-aware performance prediction to count network
   costs.  With these prediction algorithms, the Native Offloader
   compiler and runtime can predict the performance more precisely."
   This is that extension: the communication manager reports every
   physical transfer (bytes, elapsed seconds); an exponentially
   weighted moving average over the observed throughput feeds the
   dynamic estimator, so a link that degrades mid-run flips later
   offload decisions even though the configured nominal bandwidth
   never changes. *)

type t = {
  alpha : float;                (* EWMA weight of the newest sample *)
  min_sample_bytes : int;       (* ignore tiny control messages *)
  mutable estimate_bps : float; (* current belief *)
  mutable samples : int;
}

let create ?(alpha = 0.35) ?(min_sample_bytes = 2048) ~initial_bps () =
  if initial_bps <= 0.0 then
    invalid_arg "Bandwidth_predictor.create: non-positive initial";
  { alpha; min_sample_bytes; estimate_bps = initial_bps; samples = 0 }

(* Report one physical transfer.  The sample weight grows with the
   transfer size: a hundred-kilobyte batch measures the link far more
   reliably than one small message, so it should move the belief
   correspondingly further (one EWMA step per 64 KiB observed). *)
let observe t ~bytes ~seconds =
  if bytes >= t.min_sample_bytes && seconds > 0.0 then begin
    let observed_bps = float_of_int bytes *. 8.0 /. seconds in
    let steps = Float.max 1.0 (float_of_int bytes /. 65536.0) in
    let keep = Float.pow (1.0 -. t.alpha) steps in
    t.estimate_bps <-
      ((1.0 -. keep) *. observed_bps) +. (keep *. t.estimate_bps);
    t.samples <- t.samples + 1
  end

let predict_bps t = t.estimate_bps
let sample_count t = t.samples
