lib/estimator/bandwidth_predictor.ml: Float
