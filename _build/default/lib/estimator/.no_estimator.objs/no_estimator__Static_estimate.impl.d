lib/estimator/static_estimate.ml: Equation List No_analysis No_ir No_profiler Option Set String
