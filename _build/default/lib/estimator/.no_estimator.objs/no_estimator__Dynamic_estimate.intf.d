lib/estimator/dynamic_estimate.mli:
