lib/estimator/equation.ml:
