lib/estimator/dynamic_estimate.ml: Equation Hashtbl List String
