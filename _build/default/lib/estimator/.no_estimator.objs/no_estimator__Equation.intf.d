lib/estimator/equation.mli:
