lib/estimator/bandwidth_predictor.mli:
