(* The static performance estimator and target selector
   (paper Section 3.1, Table 3).

   Combines the hot function/loop profiler's samples with the
   machine-specific filter's verdicts and Equation 1 to choose the
   offloading targets the compiler will partition.  "The target
   selector chooses offloading targets if their predicted performance
   gains are positive."  When both a function and a function it
   (transitively) calls are profitable, the outermost one is chosen —
   offloading the caller subsumes the callee (the paper offloads
   getAITurn, not its inner for_i, although both have positive
   gains). *)

module Ir = No_ir.Ir
module Filter = No_analysis.Filter
module Callgraph = No_analysis.Callgraph
module Profiler = No_profiler.Profiler
module String_set = Set.Make (String)

type row = {
  row_name : string;
  row_kind : Profiler.kind;
  row_time_s : float;
  row_invocations : int;
  row_mem_bytes : int;
  row_filtered : string option;       (* why not a candidate, if filtered *)
  row_breakdown : Equation.breakdown option;  (* None when filtered *)
  row_selected : bool;
}

type result = {
  rows : row list;                    (* full Table-3-style report *)
  targets : string list;              (* selected offloading targets *)
}

let filter_reason (verdicts : Filter.t) name =
  match Filter.verdict_of verdicts name with
  | Some v -> Option.map Filter.reason_to_string v.Filter.v_machine_specific
  | None -> Some "not a module function"

(* Loops inherit their enclosing function's filter verdict: a loop
   inside a machine-specific function cannot be offloaded. *)
let sample_filter_reason verdicts (s : Profiler.sample) =
  filter_reason verdicts s.Profiler.s_in_func

let estimate ~(r : float) ~(bw_bps : float) (verdicts : Filter.t)
    (samples : Profiler.sample list) : row list =
  let rows =
    List.map
      (fun (s : Profiler.sample) ->
        let filtered = sample_filter_reason verdicts s in
        let breakdown =
          match filtered with
          | Some _ -> None
          | None ->
            Some
              (Equation.evaluate
                 {
                   Equation.tm_s = s.Profiler.s_time;
                   r;
                   mem_bytes = s.Profiler.s_mem_bytes;
                   bw_bps;
                   invocations = s.Profiler.s_invocations;
                 })
        in
        {
          row_name = s.Profiler.s_name;
          row_kind = s.Profiler.s_kind;
          row_time_s = s.Profiler.s_time;
          row_invocations = s.Profiler.s_invocations;
          row_mem_bytes = s.Profiler.s_mem_bytes;
          row_filtered = filtered;
          row_breakdown = breakdown;
          row_selected = false;
        })
      samples
  in
  rows

(* Keep only function-kind rows with positive gain, then drop any that
   is transitively called by another survivor. *)
let select (m : Ir.modul) (rows : row list) : result =
  let profitable =
    List.filter_map
      (fun row ->
        match row.row_kind, row.row_breakdown with
        | Profiler.Func, Some b when b.Equation.gain_s > 0.0 ->
          Some row.row_name
        | (Profiler.Func | Profiler.Loop), _ -> None)
      rows
  in
  let cg = Callgraph.build m in
  let profitable_set = String_set.of_list profitable in
  let subsumed =
    List.fold_left
      (fun acc name ->
        let callees = Callgraph.transitive_callees cg [ name ] in
        let callees = Callgraph.String_set.remove name callees in
        Callgraph.String_set.fold
          (fun callee acc ->
            if String_set.mem callee profitable_set then
              String_set.add callee acc
            else acc)
          callees acc)
      String_set.empty profitable
  in
  let targets =
    List.filter (fun name -> not (String_set.mem name subsumed)) profitable
  in
  let rows =
    List.map
      (fun row ->
        {
          row with
          row_selected =
            row.row_kind = Profiler.Func && List.mem row.row_name targets;
        })
      rows
  in
  { rows; targets }

(* One-call driver: profile samples -> Table 3 rows + selected targets. *)
let run (m : Ir.modul) ~r ~bw_bps (verdicts : Filter.t)
    (samples : Profiler.sample list) : result =
  select m (estimate ~r ~bw_bps verdicts samples)
