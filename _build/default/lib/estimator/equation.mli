(** Equation 1 of the paper: the offloading performance gain model.

    {[ Tg = (Tm - Ts) - Tc = Tm (1 - 1/R) - 2 (M / BW) Ninvo ]}

    where [Tm] is the mobile execution time of the task, [R] the
    server/mobile performance ratio, [M] the memory the task uses,
    [BW] the network bandwidth and [Ninvo] its invocation count.  Both
    the compile-time target selector and the run-time dynamic
    estimator decide by the sign of [Tg]. *)

type inputs = {
  tm_s : float;          (** mobile execution time, seconds *)
  r : float;             (** server/mobile performance ratio *)
  mem_bytes : int;       (** M: memory the task uses *)
  bw_bps : float;        (** BW: network bandwidth, bits per second *)
  invocations : int;     (** Ninvo *)
}

type breakdown = {
  ideal_gain_s : float;  (** Tm (1 - 1/R) *)
  comm_cost_s : float;   (** 2 (M/BW) Ninvo *)
  gain_s : float;        (** their difference: Tg *)
}

val evaluate : inputs -> breakdown
(** Evaluate Equation 1.  @raise Invalid_argument on a non-positive
    ratio or bandwidth. *)

val profitable : inputs -> bool
(** [profitable i] is [(evaluate i).gain_s > 0.0] — the paper's
    selection criterion. *)
