(* Shared rewriting machinery for the transformation passes.

   Passes either map instructions 1-to-N ({!No_ir.Ir.map_instrs}) or
   rewrite *operands*, possibly materializing new instructions before
   the instruction that uses them (how a use of a reallocated global
   becomes a load of its UVA slot). *)

module Ir = No_ir.Ir

(* Rewrite every operand of every instruction (and terminator) of [f].
   The callback may return replacement instructions to insert before
   the use, together with the new operand. *)
let rewrite_operands
    ~(rewrite :
       Ir.reg_supply -> Ir.operand -> (Ir.instr list * Ir.operand) option)
    (f : Ir.func) : Ir.func =
  let supply = Ir.reg_supply_of_func f in
  let prefix = ref [] in
  let rw op =
    match rewrite supply op with
    | None -> op
    | Some (instrs, op') ->
      prefix := !prefix @ instrs;
      op'
  in
  let rw_rvalue (rv : Ir.rvalue) : Ir.rvalue =
    match rv with
    | Ir.Bin (op, a, b) -> Ir.Bin (op, rw a, rw b)
    | Ir.Cmp (op, a, b) -> Ir.Cmp (op, rw a, rw b)
    | Ir.Cast (op, src, a, ty) -> Ir.Cast (op, src, rw a, ty)
    | Ir.Select (c, a, b) -> Ir.Select (rw c, rw a, rw b)
    | Ir.Load (ty, a) -> Ir.Load (ty, rw a)
    | Ir.Alloca (ty, n) -> Ir.Alloca (ty, n)
    | Ir.Gep (ty, base, path) ->
      let base = rw base in
      let path =
        List.map
          (function
            | Ir.Field name -> Ir.Field name
            | Ir.Index op -> Ir.Index (rw op))
          path
      in
      Ir.Gep (ty, base, path)
    | Ir.Call (name, args) -> Ir.Call (name, List.map rw args)
    | Ir.Call_ind (sg, fn, args) -> Ir.Call_ind (sg, rw fn, List.map rw args)
    | Ir.Bswap (ty, a) -> Ir.Bswap (ty, rw a)
    | Ir.Fn_map (dir, a) -> Ir.Fn_map (dir, rw a)
  in
  let rw_instr (instr : Ir.instr) : Ir.instr list =
    prefix := [];
    let rewritten =
      match instr with
      | Ir.Assign (r, rv) -> Ir.Assign (r, rw_rvalue rv)
      | Ir.Effect rv -> Ir.Effect (rw_rvalue rv)
      | Ir.Store (ty, v, a) -> Ir.Store (ty, rw v, rw a)
      | Ir.Asm text -> Ir.Asm text
    in
    !prefix @ [ rewritten ]
  in
  let rw_term (term : Ir.terminator) : Ir.instr list * Ir.terminator =
    prefix := [];
    let rewritten =
      match term with
      | Ir.Br l -> Ir.Br l
      | Ir.Cbr (c, t, e) -> Ir.Cbr (rw c, t, e)
      | Ir.Switch (v, cases, d) -> Ir.Switch (rw v, cases, d)
      | Ir.Ret None -> Ir.Ret None
      | Ir.Ret (Some op) -> Ir.Ret (Some (rw op))
      | Ir.Unreachable -> Ir.Unreachable
    in
    (!prefix, rewritten)
  in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let instrs = List.concat_map rw_instr b.Ir.instrs in
        let term_prefix, term = rw_term b.Ir.term in
        { b with Ir.instrs = instrs @ term_prefix; Ir.term = term })
      f.Ir.f_blocks
  in
  { f with Ir.f_blocks = blocks; Ir.f_nregs = supply.Ir.next }

(* Map instructions 1-to-N with a fresh-register supply. *)
let expand_instrs
    ~(expand : Ir.reg_supply -> Ir.instr -> Ir.instr list option)
    (f : Ir.func) : Ir.func =
  let supply = Ir.reg_supply_of_func f in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let instrs =
          List.concat_map
            (fun instr ->
              match expand supply instr with
              | Some replacement -> replacement
              | None -> [ instr ])
            b.Ir.instrs
        in
        { b with Ir.instrs })
      f.Ir.f_blocks
  in
  { f with Ir.f_blocks = blocks; Ir.f_nregs = supply.Ir.next }

(* Rename direct call targets module-wide. *)
let rename_calls ~(rename : string -> string option) (f : Ir.func) : Ir.func =
  Ir.map_instrs
    (fun instr ->
      let rv_of rv =
        match rv with
        | Ir.Call (name, args) -> (
          match rename name with
          | Some name' -> Ir.Call (name', args)
          | None -> rv)
        | Ir.Bin _ | Ir.Cmp _ | Ir.Cast _ | Ir.Select _ | Ir.Load _
        | Ir.Alloca _ | Ir.Gep _ | Ir.Call_ind _ | Ir.Bswap _ | Ir.Fn_map _ ->
          rv
      in
      match instr with
      | Ir.Assign (r, rv) -> [ Ir.Assign (r, rv_of rv) ]
      | Ir.Effect rv -> [ Ir.Effect (rv_of rv) ]
      | Ir.Store _ | Ir.Asm _ -> [ instr ])
    f
