(* The complete Native Offloader compiler pipeline over IR
   (paper Figure 2), given the already-selected offloading targets:

     1. memory unification: heap allocation replacement, referenced
        global reallocation, layout realignment (GEP lowering against
        the unified environment);
     2. partition into mobile and server modules;
     3. server-specific optimization: remote I/O, function pointer
        mapping, address size conversion, endianness translation.

   Target selection (profiling + filter + Equation 1) happens before
   this, in the facade library, because it needs to *run* the program
   on a profiling input. *)

module Ir = No_ir.Ir
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Validate = No_ir.Validate

type stats = {
  st_malloc_sites : int;
  st_free_sites : int;
  st_reallocated_globals : int;
  st_total_globals : int;
  st_geps_lowered : int;
  st_remote_io_sites : int;
  st_fnptr_load_maps : int;
  st_fnptr_store_maps : int;
  st_addr_loads : int;
  st_addr_stores : int;
  st_endian_swaps : int;
  st_removed_functions : string list;
  st_total_functions : int;
  st_server_functions : int;
}

type output = {
  o_mobile : Ir.modul;
  o_server : Ir.modul;
  o_targets : Partition.target list;
  o_unified : Ir.modul;            (* post-unification, pre-partition *)
  o_stats : stats;
}

let structs_fn (m : Ir.modul) name = Ir.find_struct_exn m name

(* [lower_geps] bakes the unified layout into explicit byte arithmetic
   (the literal realignment codegen of Section 3.2).  The default
   leaves GEPs symbolic and realigns by executing both partitions
   under the unified layout environment instead: semantically
   identical, but it avoids inflating the *interpreted* instruction
   count with address arithmetic that native code folds into
   addressing modes — an artifact of simulating at IR level.  The
   explicit-lowering path is kept for tests and the ablation bench. *)
let run ?(lower_geps = false) ~(mobile : Arch.t) ~(server : Arch.t)
    ~(targets : string list) (original : Ir.modul) : output =
  let total_globals = List.length original.Ir.m_globals in
  let total_functions = List.length original.Ir.m_funcs in
  (* 1. Memory unification. *)
  let m, heap_stats = Heap_replace.run original in
  let m, global_stats = Global_realloc.run m in
  let unified_layout = Layout.unified_env ~mobile ~structs:(structs_fn m) in
  let m, gep_stats =
    if lower_geps then Lower_gep.run unified_layout m
    else (m, { Lower_gep.geps_lowered = 0 })
  in
  Validate.check_module m;
  (* 2. Partition. *)
  let parts = Partition.run m ~targets in
  Validate.check_module parts.Partition.p_mobile;
  (* 3. Server-specific optimization. *)
  let server_m = parts.Partition.p_server in
  let server_m, rio_stats = Remote_io.run server_m in
  let server_m, fnptr_stats = Fnptr_map.run server_m in
  let server_m, addr_stats =
    Addr_convert.run
      ~device_ptr_bytes:(Arch.ptr_bytes server)
      ~unified_ptr_bytes:(Arch.ptr_bytes mobile)
      server_m
  in
  let server_m, endian_stats =
    Endian_translate.run ~device:server.Arch.endianness
      ~unified:mobile.Arch.endianness server_m
  in
  Validate.check_module server_m;
  {
    o_mobile = parts.Partition.p_mobile;
    o_server = server_m;
    o_targets = parts.Partition.p_targets;
    o_unified = m;
    o_stats =
      {
        st_malloc_sites = heap_stats.Heap_replace.malloc_sites;
        st_free_sites = heap_stats.Heap_replace.free_sites;
        st_reallocated_globals =
          List.length global_stats.Global_realloc.reallocated;
        st_total_globals = total_globals;
        st_geps_lowered = gep_stats.Lower_gep.geps_lowered;
        st_remote_io_sites = rio_stats.Remote_io.sites_rewritten;
        st_fnptr_load_maps = fnptr_stats.Fnptr_map.load_maps;
        st_fnptr_store_maps = fnptr_stats.Fnptr_map.store_maps;
        st_addr_loads = addr_stats.Addr_convert.loads_converted;
        st_addr_stores = addr_stats.Addr_convert.stores_converted;
        st_endian_swaps = endian_stats.Endian_translate.swaps_inserted;
        st_removed_functions = parts.Partition.p_removed;
        st_total_functions = total_functions;
        st_server_functions = List.length server_m.Ir.m_funcs;
      };
  }
