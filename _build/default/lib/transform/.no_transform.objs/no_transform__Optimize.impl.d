lib/transform/optimize.ml: Hashtbl Int64 List No_ir Option Rewrite
