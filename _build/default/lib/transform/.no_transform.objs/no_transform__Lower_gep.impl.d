lib/transform/lower_gep.ml: Int64 List No_arch No_ir Rewrite
