lib/transform/heap_replace.ml: List No_ir Rewrite
