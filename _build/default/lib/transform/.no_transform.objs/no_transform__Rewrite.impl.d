lib/transform/rewrite.ml: List No_ir
