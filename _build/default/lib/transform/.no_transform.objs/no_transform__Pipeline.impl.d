lib/transform/pipeline.ml: Addr_convert Endian_translate Fnptr_map Global_realloc Heap_replace List Lower_gep No_arch No_ir Partition Remote_io
