lib/transform/fnptr_map.ml: List No_ir Rewrite
