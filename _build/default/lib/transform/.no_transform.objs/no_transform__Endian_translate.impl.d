lib/transform/endian_translate.ml: List No_arch No_ir Rewrite
