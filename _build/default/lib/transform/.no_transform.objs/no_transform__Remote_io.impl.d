lib/transform/remote_io.ml: List No_ir Rewrite
