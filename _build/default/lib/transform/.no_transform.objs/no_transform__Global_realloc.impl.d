lib/transform/global_realloc.ml: List No_ir Rewrite Set String
