lib/transform/partition.mli: No_ir
