lib/transform/addr_convert.ml: List No_ir Rewrite
