lib/transform/partition.ml: Int64 List No_analysis No_ir Printf Rewrite
