(* Standard clean-up optimizations over the IR: constant folding and
   dead-code elimination.

   The unification passes leave foldable patterns behind (zero-offset
   adds from GEP lowering, chains of casts), and partitioning leaves
   unused values in dispatcher-adjacent code.  Both passes are
   conservative: folding only touches pure integer/float arithmetic
   with constant operands; DCE only deletes assignments to registers
   that are never read whose right-hand side has no side effects. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty

type stats = {
  folded : int;
  deleted : int;
}

(* {1 Constant folding} *)

let mask_to ty v =
  match ty with
  | Ty.I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | Ty.I16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | Ty.I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | _ -> v

let fold_bin (op : Ir.binop) a b ty : Ir.operand option =
  let wrap v = Some (Ir.Int (mask_to ty v, ty)) in
  match op with
  | Ir.Add -> wrap (Int64.add a b)
  | Ir.Sub -> wrap (Int64.sub a b)
  | Ir.Mul -> wrap (Int64.mul a b)
  | Ir.Sdiv -> if Int64.equal b 0L then None else wrap (Int64.div a b)
  | Ir.Udiv -> if Int64.equal b 0L then None else wrap (Int64.unsigned_div a b)
  | Ir.Srem -> if Int64.equal b 0L then None else wrap (Int64.rem a b)
  | Ir.Urem -> if Int64.equal b 0L then None else wrap (Int64.unsigned_rem a b)
  | Ir.And -> wrap (Int64.logand a b)
  | Ir.Or -> wrap (Int64.logor a b)
  | Ir.Xor -> wrap (Int64.logxor a b)
  | Ir.Shl -> wrap (Int64.shift_left a (Int64.to_int b land 63))
  | Ir.Lshr -> wrap (Int64.shift_right_logical a (Int64.to_int b land 63))
  | Ir.Ashr -> wrap (Int64.shift_right a (Int64.to_int b land 63))
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> None

let fold_fbin (op : Ir.binop) a b ty : Ir.operand option =
  let wrap v = Some (Ir.Float (v, ty)) in
  match op with
  | Ir.Fadd -> wrap (a +. b)
  | Ir.Fsub -> wrap (a -. b)
  | Ir.Fmul -> wrap (a *. b)
  | Ir.Fdiv -> wrap (a /. b)
  | _ -> None

(* Identity simplifications: x+0, x*1, x*0, x|0, x&(-1), x^0, x<<0. *)
let simplify_identity (op : Ir.binop) (x : Ir.operand) (c : int64) :
    Ir.operand option =
  match op, c with
  | (Ir.Add | Ir.Sub | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Ashr), 0L ->
    Some x
  | Ir.Mul, 1L | Ir.Sdiv, 1L | Ir.Udiv, 1L -> Some x
  | Ir.And, -1L -> Some x
  | _ -> None

let fold_rvalue (rv : Ir.rvalue) : [ `Operand of Ir.operand | `Keep ] =
  match rv with
  | Ir.Bin (op, Ir.Int (a, ty), Ir.Int (b, _)) -> (
    match fold_bin op a b ty with
    | Some folded -> `Operand folded
    | None -> `Keep)
  | Ir.Bin (op, Ir.Float (a, ty), Ir.Float (b, _)) -> (
    match fold_fbin op a b ty with
    | Some folded -> `Operand folded
    | None -> `Keep)
  | Ir.Bin ((Ir.Add | Ir.Mul | Ir.Or | Ir.Xor | Ir.And) as op, Ir.Int (c, _), x)
  | Ir.Bin (op, x, Ir.Int (c, _)) -> (
    match simplify_identity op x c with
    | Some simplified -> `Operand simplified
    | None -> `Keep)
  | _ -> `Keep

(* Fold within one function to a fixpoint: replace foldable
   assignments by a substitution of their uses. *)
let fold_func (f : Ir.func) : Ir.func * int =
  let folded = ref 0 in
  let subst : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
  let rewrite _supply (op : Ir.operand) =
    match op with
    | Ir.Reg r -> (
      match Hashtbl.find_opt subst r with
      | Some replacement -> Some ([], replacement)
      | None -> None)
    | _ -> None
  in
  let rec pass f =
    Hashtbl.reset subst;
    (* Registers are not SSA: a substitution r := op is sound only if
       r is assigned exactly once, and — when op is itself a register —
       that register is also single-assignment (so later reads of r
       cannot observe a newer value of op). *)
    let counts = Hashtbl.create 16 in
    Ir.fold_instrs
      (fun () instr ->
        match instr with
        | Ir.Assign (r, _) ->
          Hashtbl.replace counts r
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
        | _ -> ())
      () f;
    let single r = Hashtbl.find_opt counts r = Some 1 in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun instr ->
            match instr with
            | Ir.Assign (r, rv) when single r -> (
              match fold_rvalue rv with
              | `Operand (Ir.Reg x)
                when (not (single x)) || Hashtbl.mem subst x ->
                (* unsound (x reassigned) or x is being removed this
                   round (chain resolved on the next fixpoint pass) *)
                ()
              | `Operand op -> Hashtbl.replace subst r op
              | `Keep -> ())
            | _ -> ())
          b.Ir.instrs)
      f.Ir.f_blocks;
    if Hashtbl.length subst = 0 then f
    else begin
      folded := !folded + Hashtbl.length subst;
      (* drop the folded assignments, substitute their uses *)
      let f =
        Ir.map_instrs
          (fun instr ->
            match instr with
            | Ir.Assign (r, _) when Hashtbl.mem subst r -> []
            | other -> [ other ])
          f
      in
      let f = Rewrite.rewrite_operands ~rewrite f in
      pass f
    end
  in
  let f' = pass f in
  (f', !folded)

(* {1 Dead code elimination} *)

let has_side_effects (rv : Ir.rvalue) =
  match rv with
  | Ir.Call _ | Ir.Call_ind _ | Ir.Load _ | Ir.Alloca _ -> true
    (* loads kept: a fault-driven load is observable in this system *)
  | Ir.Bin _ | Ir.Cmp _ | Ir.Cast _ | Ir.Select _ | Ir.Gep _ | Ir.Bswap _
  | Ir.Fn_map _ -> false

let dce_func (f : Ir.func) : Ir.func * int =
  let deleted = ref 0 in
  let rec pass f =
    let used = Hashtbl.create 64 in
    let note op =
      match op with
      | Ir.Reg r -> Hashtbl.replace used r ()
      | _ -> ()
    in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun instr -> List.iter note (Ir.operands_of_instr instr))
          b.Ir.instrs;
        match b.Ir.term with
        | Ir.Cbr (op, _, _) | Ir.Switch (op, _, _) | Ir.Ret (Some op) ->
          note op
        | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> ())
      f.Ir.f_blocks;
    let changed = ref false in
    let f' =
      Ir.map_instrs
        (fun instr ->
          match instr with
          | Ir.Assign (r, rv)
            when (not (Hashtbl.mem used r)) && not (has_side_effects rv) ->
            incr deleted;
            changed := true;
            []
          | other -> [ other ])
        f
    in
    if !changed then pass f' else f'
  in
  (pass f, !deleted)

(* {1 Module driver} *)

let run (m : Ir.modul) : Ir.modul * stats =
  let folded = ref 0 and deleted = ref 0 in
  let funcs =
    List.map
      (fun f ->
        let f, nf = fold_func f in
        let f, nd = dce_func f in
        folded := !folded + nf;
        deleted := !deleted + nd;
        f)
      m.Ir.m_funcs
  in
  ({ m with Ir.m_funcs = funcs }, { folded = !folded; deleted = !deleted })
