(* Referenced global variable reallocation (paper Section 3.2,
   Figure 3(b) lines 11/17/19).

   Back-end compilers place globals at device-specific native
   addresses, so a pointer to a mobile global dereferenced on the
   server would read the wrong object.  The pass moves every
   *referenced* global to the UVA heap: the original global @g is
   replaced by a slot global @g__re of pointer type; main's entry
   gains a call to the runtime's __uva_init_global$g (which allocates
   UVA space, writes g's original initializer, and returns the
   address); every use of @g becomes a load of the slot.

   At offload initialization the runtime copies the slot values to the
   server's own slots — the server partition never executes main. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module String_set = Set.Make (String)

let slot_name g = g ^ "__re"
let init_extern g = "__uva_init_global$" ^ g

type stats = {
  reallocated : string list;          (* globals moved to UVA *)
  untouched : string list;            (* never-referenced globals *)
}

(* Globals referenced by any instruction operand in any function. *)
let referenced_globals (m : Ir.modul) : String_set.t =
  List.fold_left
    (fun acc (f : Ir.func) ->
      Ir.fold_instrs
        (fun acc instr ->
          List.fold_left
            (fun acc op ->
              match op with
              | Ir.Global name -> String_set.add name acc
              | Ir.Reg _ | Ir.Int _ | Ir.Float _ | Ir.Null _ | Ir.Fn_addr _ ->
                acc)
            acc
            (Ir.operands_of_instr instr))
        acc f)
    String_set.empty m.Ir.m_funcs

let run (m : Ir.modul) : Ir.modul * stats =
  let referenced = referenced_globals m in
  let moved, kept =
    List.partition
      (fun (g : Ir.global) -> String_set.mem g.Ir.g_name referenced)
      m.Ir.m_globals
  in
  let slot_of =
    List.fold_left
      (fun acc (g : Ir.global) ->
        (g.Ir.g_name, (slot_name g.Ir.g_name, g.Ir.g_ty)) :: acc)
      [] moved
  in
  (* Slot globals: @g__re : ty*, zero-initialized. *)
  let slots =
    List.map
      (fun (g : Ir.global) ->
        {
          Ir.g_name = slot_name g.Ir.g_name;
          Ir.g_ty = Ty.Ptr g.Ir.g_ty;
          Ir.g_init = Ir.Zero_init;
        })
      moved
  in
  (* Rewrite uses: Global g  ==>  load ptr-to-ty @g__re. *)
  let rewrite supply op =
    match op with
    | Ir.Global name -> (
      match List.assoc_opt name slot_of with
      | None -> None
      | Some (slot, ty) ->
        let r = Ir.fresh_reg supply in
        Some
          ( [ Ir.Assign (r, Ir.Load (Ty.Ptr ty, Ir.Global slot)) ],
            Ir.Reg r ))
    | Ir.Reg _ | Ir.Int _ | Ir.Float _ | Ir.Null _ | Ir.Fn_addr _ -> None
  in
  let funcs =
    List.map (Rewrite.rewrite_operands ~rewrite) m.Ir.m_funcs
  in
  (* Prepend the slot initialization to main's entry block. *)
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        if not (String.equal f.Ir.f_name "main") then f
        else
          let supply = Ir.reg_supply_of_func f in
          let init_instrs =
            List.concat_map
              (fun (g : Ir.global) ->
                let r = Ir.fresh_reg supply in
                [
                  Ir.Assign (r, Ir.Call (init_extern g.Ir.g_name, []));
                  Ir.Store
                    ( Ty.Ptr g.Ir.g_ty,
                      Ir.Reg r,
                      Ir.Global (slot_name g.Ir.g_name) );
                ])
              moved
          in
          match f.Ir.f_blocks with
          | entry :: rest ->
            {
              f with
              Ir.f_blocks =
                { entry with Ir.instrs = init_instrs @ entry.Ir.instrs }
                :: rest;
              Ir.f_nregs = supply.Ir.next;
            }
          | [] -> f)
      funcs
  in
  let externs =
    List.map
      (fun (g : Ir.global) ->
        (init_extern g.Ir.g_name, Ty.signature [] (Ty.Ptr g.Ir.g_ty)))
      moved
  in
  ( {
      m with
      Ir.m_globals = kept @ slots;
      Ir.m_funcs = funcs;
      Ir.m_externs = m.Ir.m_externs @ externs;
      Ir.m_uva_globals = m.Ir.m_uva_globals @ moved;
    },
    {
      reallocated = List.map (fun (g : Ir.global) -> g.Ir.g_name) moved;
      untouched = List.map (fun (g : Ir.global) -> g.Ir.g_name) kept;
    } )
