(* The partitioner (paper Section 3.3, Figure 3(b)/(c)).

   From the unified module and the selected targets it produces:

   Mobile partition — for every target f, a dispatch wrapper

       __dispatch$f(args):
         if __should_offload$f():      // dynamic estimation (runtime)
           return __offload$f(args)    // offloading execution (runtime)
         else:
           return f(args)              // local execution

   and every direct call to f is redirected to the wrapper — the
   compiled form of Figure 3(b) lines 33-41.

   Server partition — for every target f, a typed unmarshalling stub
   __serve$f (receives arguments from the runtime's argument queue,
   calls f, posts the return value), plus the dispatcher

       __listen_client():
         while (id = __accept_offload()) >= 0:
           switch id: case ID_f: __serve$f()

   which is Figure 3(c) lines 27-41, and unused-function removal
   (getPlayerTurn is deleted, line 66-67).  Stack reallocation is the
   runtime's responsibility: the server host allocates frames from the
   server stack region of the UVA space. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Reachability = No_analysis.Reachability

let dispatch_name f = "__dispatch$" ^ f
let should_offload_extern f = "__should_offload$" ^ f
let offload_extern f = "__offload$" ^ f
let serve_name f = "__serve$" ^ f
let listener_name = "__listen_client"
let accept_extern = "__accept_offload"
let arg_i64_extern = "__arg_i64"
let arg_f64_extern = "__arg_f64"
let ret_i64_extern = "__ret_i64"
let ret_f64_extern = "__ret_f64"
let ret_void_extern = "__ret_void"

type target = {
  t_name : string;
  t_id : int;
}

type result = {
  p_mobile : Ir.modul;
  p_server : Ir.modul;
  p_targets : target list;
  p_removed : string list;       (* functions removed server-side *)
}

let server_externs =
  [
    (accept_extern, Ty.signature [] Ty.I64);
    (arg_i64_extern, Ty.signature [ Ty.I64 ] Ty.I64);
    (arg_f64_extern, Ty.signature [ Ty.I64 ] Ty.F64);
    (ret_i64_extern, Ty.signature [ Ty.I64 ] Ty.Void);
    (ret_f64_extern, Ty.signature [ Ty.F64 ] Ty.Void);
    (ret_void_extern, Ty.signature [] Ty.Void);
  ]

(* {1 Mobile side} *)

let make_dispatch (f : Ir.func) : Ir.func =
  let params = List.map snd f.Ir.f_params in
  let args = List.map (fun (r, _) -> Ir.Reg r) f.Ir.f_params in
  let supply = { Ir.next = List.length params } in
  let fresh () = Ir.fresh_reg supply in
  let decision = fresh () in
  let is_void = Ty.equal f.Ir.f_ret Ty.Void in
  let call_into target_label call_name =
    if is_void then
      {
        Ir.label = target_label;
        Ir.instrs = [ Ir.Effect (Ir.Call (call_name, args)) ];
        Ir.term = Ir.Ret None;
      }
    else
      let r = fresh () in
      {
        Ir.label = target_label;
        Ir.instrs = [ Ir.Assign (r, Ir.Call (call_name, args)) ];
        Ir.term = Ir.Ret (Some (Ir.Reg r));
      }
  in
  let entry =
    {
      Ir.label = "entry";
      Ir.instrs =
        [ Ir.Assign (decision, Ir.Call (should_offload_extern f.Ir.f_name, [])) ];
      Ir.term = Ir.Cbr (Ir.Reg decision, "offload", "local");
    }
  in
  let blocks =
    [
      entry;
      call_into "offload" (offload_extern f.Ir.f_name);
      call_into "local" f.Ir.f_name;
    ]
  in
  {
    Ir.f_name = dispatch_name f.Ir.f_name;
    Ir.f_params = f.Ir.f_params;
    Ir.f_ret = f.Ir.f_ret;
    Ir.f_blocks = blocks;
    Ir.f_nregs = supply.Ir.next;
  }

let mobile_partition (m : Ir.modul) (targets : target list) : Ir.modul =
  let target_names = List.map (fun t -> t.t_name) targets in
  let rename name =
    if List.mem name target_names then Some (dispatch_name name) else None
  in
  let redirected = List.map (Rewrite.rename_calls ~rename) m.Ir.m_funcs in
  let dispatchers =
    List.map
      (fun t -> make_dispatch (Ir.find_func_exn m t.t_name))
      targets
  in
  let externs =
    List.concat_map
      (fun t ->
        let f = Ir.find_func_exn m t.t_name in
        let sg = Ty.signature (List.map snd f.Ir.f_params) f.Ir.f_ret in
        [
          (should_offload_extern t.t_name, Ty.signature [] Ty.I8);
          (offload_extern t.t_name, sg);
        ])
      targets
  in
  {
    m with
    Ir.m_funcs = redirected @ dispatchers;
    Ir.m_externs = m.Ir.m_externs @ externs;
  }

(* {1 Server side} *)

let make_serve (f : Ir.func) : Ir.func =
  let supply = { Ir.next = 0 } in
  let fresh () = Ir.fresh_reg supply in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let unmarshal k (ty : Ty.t) : Ir.operand =
    match ty with
    | Ty.I64 ->
      let r = fresh () in
      emit (Ir.Assign (r, Ir.Call (arg_i64_extern, [ Ir.Int (Int64.of_int k, Ty.I64) ])));
      Ir.Reg r
    | Ty.I8 | Ty.I16 | Ty.I32 ->
      let raw = fresh () and r = fresh () in
      emit (Ir.Assign (raw, Ir.Call (arg_i64_extern, [ Ir.Int (Int64.of_int k, Ty.I64) ])));
      emit (Ir.Assign (r, Ir.Cast (Ir.Trunc, Ty.I64, Ir.Reg raw, ty)));
      Ir.Reg r
    | Ty.F64 ->
      let r = fresh () in
      emit (Ir.Assign (r, Ir.Call (arg_f64_extern, [ Ir.Int (Int64.of_int k, Ty.I64) ])));
      Ir.Reg r
    | Ty.F32 ->
      let raw = fresh () and r = fresh () in
      emit (Ir.Assign (raw, Ir.Call (arg_f64_extern, [ Ir.Int (Int64.of_int k, Ty.I64) ])));
      emit (Ir.Assign (r, Ir.Cast (Ir.Fp_trunc, Ty.F64, Ir.Reg raw, ty)));
      Ir.Reg r
    | Ty.Ptr _ | Ty.Fn_ptr _ ->
      let raw = fresh () and r = fresh () in
      emit (Ir.Assign (raw, Ir.Call (arg_i64_extern, [ Ir.Int (Int64.of_int k, Ty.I64) ])));
      emit (Ir.Assign (r, Ir.Cast (Ir.Int_to_ptr, Ty.I64, Ir.Reg raw, ty)));
      Ir.Reg r
    | Ty.Struct _ | Ty.Array _ | Ty.Void ->
      invalid_arg "Partition.make_serve: non-scalar parameter"
  in
  let args = List.mapi (fun k (_, ty) -> unmarshal k ty) f.Ir.f_params in
  (match f.Ir.f_ret with
  | Ty.Void ->
    emit (Ir.Effect (Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Effect (Ir.Call (ret_void_extern, [])))
  | Ty.F64 ->
    let r = fresh () in
    emit (Ir.Assign (r, Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Effect (Ir.Call (ret_f64_extern, [ Ir.Reg r ])))
  | Ty.F32 ->
    let r = fresh () and widened = fresh () in
    emit (Ir.Assign (r, Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Assign (widened, Ir.Cast (Ir.Fp_ext, Ty.F32, Ir.Reg r, Ty.F64)));
    emit (Ir.Effect (Ir.Call (ret_f64_extern, [ Ir.Reg widened ])))
  | Ty.I64 ->
    let r = fresh () in
    emit (Ir.Assign (r, Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Effect (Ir.Call (ret_i64_extern, [ Ir.Reg r ])))
  | Ty.I8 | Ty.I16 | Ty.I32 ->
    let r = fresh () and widened = fresh () in
    emit (Ir.Assign (r, Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Assign (widened, Ir.Cast (Ir.Sext, f.Ir.f_ret, Ir.Reg r, Ty.I64)));
    emit (Ir.Effect (Ir.Call (ret_i64_extern, [ Ir.Reg widened ])))
  | Ty.Ptr _ | Ty.Fn_ptr _ ->
    let r = fresh () and as_int = fresh () in
    emit (Ir.Assign (r, Ir.Call (f.Ir.f_name, args)));
    emit (Ir.Assign (as_int, Ir.Cast (Ir.Ptr_to_int, f.Ir.f_ret, Ir.Reg r, Ty.I64)));
    emit (Ir.Effect (Ir.Call (ret_i64_extern, [ Ir.Reg as_int ])))
  | Ty.Struct _ | Ty.Array _ ->
    invalid_arg "Partition.make_serve: non-scalar return");
  {
    Ir.f_name = serve_name f.Ir.f_name;
    Ir.f_params = [];
    Ir.f_ret = Ty.Void;
    Ir.f_blocks =
      [ { Ir.label = "entry"; Ir.instrs = List.rev !instrs; Ir.term = Ir.Ret None } ];
    Ir.f_nregs = supply.Ir.next;
  }

let make_listener (targets : target list) : Ir.func =
  let supply = { Ir.next = 0 } in
  let id = Ir.fresh_reg supply in
  let cond = Ir.fresh_reg supply in
  let case_label t = Printf.sprintf "case.%s" t.t_name in
  let header =
    {
      Ir.label = "listen.cond";
      Ir.instrs =
        [
          Ir.Assign (id, Ir.Call (accept_extern, []));
          Ir.Assign (cond, Ir.Cmp (Ir.Sge, Ir.Reg id, Ir.Int (0L, Ty.I64)));
        ];
      Ir.term = Ir.Cbr (Ir.Reg cond, "dispatch", "listen.end");
    }
  in
  let dispatch =
    {
      Ir.label = "dispatch";
      Ir.instrs = [];
      Ir.term =
        Ir.Switch
          ( Ir.Reg id,
            List.map (fun t -> (Int64.of_int t.t_id, case_label t)) targets,
            "bad.target" );
    }
  in
  let cases =
    List.map
      (fun t ->
        {
          Ir.label = case_label t;
          Ir.instrs = [ Ir.Effect (Ir.Call (serve_name t.t_name, [])) ];
          Ir.term = Ir.Br "listen.cond";
        })
      targets
  in
  let bad =
    { Ir.label = "bad.target"; Ir.instrs = []; Ir.term = Ir.Unreachable }
  in
  let finish =
    { Ir.label = "listen.end"; Ir.instrs = []; Ir.term = Ir.Ret None }
  in
  {
    Ir.f_name = listener_name;
    Ir.f_params = [];
    Ir.f_ret = Ty.Void;
    Ir.f_blocks = [ header; dispatch ] @ cases @ [ bad; finish ];
    Ir.f_nregs = supply.Ir.next;
  }

let server_partition (m : Ir.modul) (targets : target list) :
    Ir.modul * string list =
  let serves =
    List.map (fun t -> make_serve (Ir.find_func_exn m t.t_name)) targets
  in
  let listener = make_listener targets in
  let with_stubs =
    {
      m with
      Ir.m_funcs = m.Ir.m_funcs @ serves @ [ listener ];
      Ir.m_externs = m.Ir.m_externs @ server_externs;
    }
  in
  Reachability.remove_unused with_stubs ~roots:[ listener_name ]

(* {1 Driver} *)

let run (m : Ir.modul) ~(targets : string list) : result =
  let targets =
    List.mapi (fun i name -> { t_name = name; t_id = i + 1 }) targets
  in
  List.iter
    (fun t ->
      match Ir.find_func m t.t_name with
      | Some _ -> ()
      | None ->
        invalid_arg
          (Printf.sprintf "Partition.run: unknown target %s" t.t_name))
    targets;
  let p_mobile = mobile_partition m targets in
  let p_server, p_removed = server_partition m targets in
  { p_mobile; p_server; p_targets = targets; p_removed }
