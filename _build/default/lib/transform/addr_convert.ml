(* Address size conversion (paper Section 3.2).

   "If a mobile device and a server use different address sizes such
   as 32 bits and 64 bits, the Native Offloader compiler inserts
   address size conversion codes that extend 32-bit pointers to 64-bit
   pointers for every memory access."

   Memory holds pointers at the *unified* (mobile, 32-bit) width.  On
   a 64-bit server every load/store of a pointer-typed scalar is
   rewritten to an i32 access plus explicit conversions:

     r = load T* a        ==>   r32 = load i32 (bitcast a)
                                r64 = zext r32 to i64
                                r   = inttoptr r64 to T*

     store T* v, a        ==>   vi  = ptrtoint v to i64
                                v32 = trunc vi to i32
                                store i32 v32, (bitcast a)

   The pass is a no-op when the widths already agree — the compiler
   "does not apply the address size conversion if the targets use the
   same address size". *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty

type stats = { loads_converted : int; stores_converted : int }

let is_ptr_ty (ty : Ty.t) =
  match ty with
  | Ty.Ptr _ | Ty.Fn_ptr _ -> true
  | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 | Ty.F32 | Ty.F64 | Ty.Struct _
  | Ty.Array _ | Ty.Void -> false

let run_func (f : Ir.func) : Ir.func * stats =
  let loads = ref 0 and stores = ref 0 in
  let expand supply (instr : Ir.instr) : Ir.instr list option =
    match instr with
    | Ir.Assign (r, Ir.Load (ty, a)) when is_ptr_ty ty ->
      incr loads;
      let a32 = Ir.fresh_reg supply in
      let r32 = Ir.fresh_reg supply in
      let r64 = Ir.fresh_reg supply in
      Some
        [
          Ir.Assign (a32, Ir.Cast (Ir.Bitcast, Ty.Ptr ty, a, Ty.Ptr Ty.I32));
          Ir.Assign (r32, Ir.Load (Ty.I32, Ir.Reg a32));
          Ir.Assign (r64, Ir.Cast (Ir.Zext, Ty.I32, Ir.Reg r32, Ty.I64));
          Ir.Assign (r, Ir.Cast (Ir.Int_to_ptr, Ty.I64, Ir.Reg r64, ty));
        ]
    | Ir.Store (ty, v, a) when is_ptr_ty ty ->
      incr stores;
      let vi = Ir.fresh_reg supply in
      let v32 = Ir.fresh_reg supply in
      let a32 = Ir.fresh_reg supply in
      Some
        [
          Ir.Assign (vi, Ir.Cast (Ir.Ptr_to_int, ty, v, Ty.I64));
          Ir.Assign (v32, Ir.Cast (Ir.Trunc, Ty.I64, Ir.Reg vi, Ty.I32));
          Ir.Assign (a32, Ir.Cast (Ir.Bitcast, Ty.Ptr ty, a, Ty.Ptr Ty.I32));
          Ir.Store (Ty.I32, Ir.Reg v32, Ir.Reg a32);
        ]
    | Ir.Assign (_, _) | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> None
  in
  let f' = Rewrite.expand_instrs ~expand f in
  (f', { loads_converted = !loads; stores_converted = !stores })

(* Apply only when the device width differs from the unified width. *)
let run ~(device_ptr_bytes : int) ~(unified_ptr_bytes : int) (m : Ir.modul) :
    Ir.modul * stats =
  if device_ptr_bytes = unified_ptr_bytes then
    (m, { loads_converted = 0; stores_converted = 0 })
  else begin
    let acc = ref { loads_converted = 0; stores_converted = 0 } in
    let funcs =
      List.map
        (fun f ->
          let f', s = run_func f in
          acc :=
            {
              loads_converted = !acc.loads_converted + s.loads_converted;
              stores_converted = !acc.stores_converted + s.stores_converted;
            };
          f')
        m.Ir.m_funcs
    in
    ({ m with Ir.m_funcs = funcs }, !acc)
  end
