(* Heap allocation replacement (paper Section 3.2, Figure 2).

   "The Native Offloader compiler replaces memory allocation /
   deallocation call sites with UVA allocation/deallocation function
   calls [...] The compiler replaces all the allocation sites because
   a server may access an object not on the UVA space due to imprecise
   static alias analysis." *)

module Ir = No_ir.Ir

type stats = { malloc_sites : int; free_sites : int }

let run (m : Ir.modul) : Ir.modul * stats =
  let mallocs = ref 0 and frees = ref 0 in
  let rename name =
    match name with
    | "malloc" ->
      incr mallocs;
      Some "u_malloc"
    | "free" ->
      incr frees;
      Some "u_free"
    | _ -> None
  in
  let funcs = List.map (Rewrite.rename_calls ~rename) m.Ir.m_funcs in
  ({ m with Ir.m_funcs = funcs },
   { malloc_sites = !mallocs; free_sites = !frees })
