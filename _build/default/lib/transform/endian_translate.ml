(* Endianness translation (paper Section 3.2).

   When the two devices disagree on byte order, a device reading
   unified memory with its native order sees byte-swapped values.  The
   compiler wraps every multi-byte load with a byte swap after it and
   every store with a byte swap before it, on the device whose native
   order differs from the unified (mobile) order.

   The paper's platforms are both little endian, so this pass inserts
   nothing there ("Native Offloader does not suffer from endianness
   translation overheads because the mobile device and the server use
   the same endianness"); our synthetic big-endian profile exercises
   it. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Arch = No_arch.Arch

type stats = { swaps_inserted : int }

let swappable (ty : Ty.t) =
  match ty with
  | Ty.I16 | Ty.I32 | Ty.I64 | Ty.F32 | Ty.F64 -> true
  | Ty.I8 -> false                     (* single byte: no order *)
  | Ty.Ptr _ | Ty.Fn_ptr _ ->
    (* Pointer accesses must be converted to integer accesses by the
       address-size pass before this one; the pipeline guarantees that
       ordering whenever endianness differs (the unified pointer width
       is the mobile's, so a differing-endianness server in our arch
       zoo also has a differing width). *)
    false
  | Ty.Struct _ | Ty.Array _ | Ty.Void -> false

let run_func (f : Ir.func) : Ir.func * int =
  let count = ref 0 in
  let expand supply (instr : Ir.instr) : Ir.instr list option =
    match instr with
    | Ir.Assign (r, (Ir.Load (ty, _) as load)) when swappable ty ->
      incr count;
      let raw = Ir.fresh_reg supply in
      Some [ Ir.Assign (raw, load); Ir.Assign (r, Ir.Bswap (ty, Ir.Reg raw)) ]
    | Ir.Store (ty, v, a) when swappable ty ->
      incr count;
      let swapped = Ir.fresh_reg supply in
      Some
        [
          Ir.Assign (swapped, Ir.Bswap (ty, v));
          Ir.Store (ty, Ir.Reg swapped, a);
        ]
    | Ir.Assign (_, _) | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> None
  in
  let f' = Rewrite.expand_instrs ~expand f in
  (f', !count)

(* Apply on the device whose endianness differs from the unified
   (mobile) one. *)
let run ~(device : Arch.endianness) ~(unified : Arch.endianness) (m : Ir.modul)
    : Ir.modul * stats =
  if device = unified then (m, { swaps_inserted = 0 })
  else begin
    let total = ref 0 in
    let funcs =
      List.map
        (fun f ->
          let f', n = run_func f in
          total := !total + n;
          f')
        m.Ir.m_funcs
    in
    ({ m with Ir.m_funcs = funcs }, { swaps_inserted = !total })
  end
