(* Memory layout realignment / GEP lowering (paper Section 3.2,
   Figure 4).

   A symbolic GEP leaves field offsets to the executing machine's
   ABI — which is exactly how the same struct ends up with different
   layouts on IA32 and ARM.  This pass *bakes the unified layout in*:
   every GEP becomes explicit byte arithmetic computed from the given
   layout environment (the mobile device's rules, the standard layout
   of the paper).  After this pass both partitions address any field
   of any object at the same UVA byte offset.

   Lowering shape, for  r = gep T base .f [i]:
     a0 = ptrtoint base           : i64
     a1 = add a0, offset(T, f)
     i64idx = sext/zext i         : i64   (if narrower)
     off = mul i64idx, size(elem)
     a2 = add a1, off
     r  = inttoptr a2             : result-ty*                     *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Layout = No_arch.Layout
module Validate = No_ir.Validate

let i64c v = Ir.Int (Int64.of_int v, Ty.I64)

type stats = { geps_lowered : int }

let lower_func (m : Ir.modul) (layout : Layout.env) (f : Ir.func) :
    Ir.func * int =
  let reg_tys = Validate.reg_types m f in
  let count = ref 0 in
  let expand supply (instr : Ir.instr) : Ir.instr list option =
    let lower r (pointee : Ty.t) base path =
      incr count;
      let instrs = ref [] in
      let emit i = instrs := i :: !instrs in
      let fresh () = Ir.fresh_reg supply in
      let acc = fresh () in
      emit
        (Ir.Assign
           (acc, Ir.Cast (Ir.Ptr_to_int, Ty.Ptr pointee, base, Ty.I64)));
      let cur = ref (Ir.Reg acc) in
      let add_offset (op : Ir.operand) =
        let r' = fresh () in
        emit (Ir.Assign (r', Ir.Bin (Ir.Add, !cur, op)));
        cur := Ir.Reg r'
      in
      let widen (op : Ir.operand) : Ir.operand =
        let ty = Validate.operand_ty_with m f reg_tys op in
        if Ty.equal ty Ty.I64 then op
        else
          let r' = fresh () in
          emit (Ir.Assign (r', Ir.Cast (Ir.Sext, ty, op, Ty.I64)));
          Ir.Reg r'
      in
      let rec walk (ty : Ty.t) path =
        match path with
        | [] -> ty
        | Ir.Field fname :: rest -> (
          match ty with
          | Ty.Struct sname ->
            let offset = Layout.field_offset layout sname fname in
            if offset <> 0 then add_offset (i64c offset);
            walk (Layout.field_ty layout sname fname) rest
          | _ -> invalid_arg "Lower_gep: field of non-struct")
        | Ir.Index op :: rest ->
          let elem =
            match ty with Ty.Array (elem, _) -> elem | other -> other
          in
          let idx = widen op in
          let scaled = fresh () in
          emit
            (Ir.Assign
               (scaled,
                Ir.Bin (Ir.Mul, idx, i64c (Layout.size_of layout elem))));
          add_offset (Ir.Reg scaled);
          walk elem rest
      in
      let result_ty = walk pointee path in
      emit (Ir.Assign (r, Ir.Cast (Ir.Int_to_ptr, Ty.I64, !cur, Ty.Ptr result_ty)));
      List.rev !instrs
    in
    match instr with
    | Ir.Assign (r, Ir.Gep (pointee, base, path)) ->
      Some (lower r pointee base path)
    | Ir.Effect (Ir.Gep _) -> Some []   (* address never used: drop *)
    | Ir.Assign (_, _) | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> None
  in
  let f' = Rewrite.expand_instrs ~expand f in
  (f', !count)

let run (layout : Layout.env) (m : Ir.modul) : Ir.modul * stats =
  let total = ref 0 in
  let funcs =
    List.map
      (fun f ->
        let f', n = lower_func m layout f in
        total := !total + n;
        f')
      m.Ir.m_funcs
  in
  ({ m with Ir.m_funcs = funcs }, { geps_lowered = !total })
