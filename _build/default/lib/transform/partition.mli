(** The partitioner (paper §3.3, Figure 3(b)/(c)).

    Produces the mobile partition — a dispatch wrapper per target that
    asks the runtime's dynamic estimator and either calls the runtime's
    offload extern or the original function, with every direct call
    redirected to the wrapper — and the server partition — a typed
    argument-unmarshalling stub per target plus the
    [__listen_client] accept/switch/serve loop of Figure 3(c), with
    unused functions removed.  Stack reallocation is realized by the
    runtime: server frames live in the server stack region of the UVA
    space. *)

type target = {
  t_name : string;
  t_id : int;       (** the switch value in the listener *)
}

type result = {
  p_mobile : No_ir.Ir.modul;
  p_server : No_ir.Ir.modul;
  p_targets : target list;
  p_removed : string list;   (** functions removed server-side *)
}

(** {1 Runtime entry-point names}

    The externs the generated code calls; the offloading runtime
    services them. *)

val dispatch_name : string -> string
val should_offload_extern : string -> string
val offload_extern : string -> string
val serve_name : string -> string
val listener_name : string
val accept_extern : string
val arg_i64_extern : string
val arg_f64_extern : string
val ret_i64_extern : string
val ret_f64_extern : string
val ret_void_extern : string

val server_externs : (string * No_ir.Ty.signature) list

val run : No_ir.Ir.modul -> targets:string list -> result
(** Partition [modul] for the given target functions (ids assigned in
    list order, from 1).
    @raise Invalid_argument on an unknown target. *)
