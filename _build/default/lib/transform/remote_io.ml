(* Remote I/O rewriting (paper Section 3.4, Figure 3(c) line 61).

   "the Native Offloader compiler replaces well-known output function
   call sites with remote I/O function calls.  The remote I/O function
   sends I/O requests from the server to the mobile device [...] For
   file streams, Native Offloader supports remote input operations
   because it can prefetch data and amortize the communication
   overheads."

   Applied to the *server* partition only: on the mobile device the
   original local I/O is correct. *)

module Ir = No_ir.Ir
module Builtins = No_ir.Builtins

type stats = { sites_rewritten : int }

let run (m : Ir.modul) : Ir.modul * stats =
  let count = ref 0 in
  let rename name =
    match Builtins.remote_counterpart name with
    | Some remote ->
      incr count;
      Some remote
    | None -> None
  in
  let funcs = List.map (Rewrite.rename_calls ~rename) m.Ir.m_funcs in
  ({ m with Ir.m_funcs = funcs }, { sites_rewritten = !count })
