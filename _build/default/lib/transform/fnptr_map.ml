(* Function pointer mapping (paper Section 3.4, Figure 3(c) line 56).

   Unified memory stores *mobile* code addresses for function
   pointers (the mobile layout is the standard).  Server code must
   therefore translate: a function pointer loaded from memory goes
   through the mobile-to-server map before an indirect call; a
   function pointer about to be stored (including a server-native
   &f operand) goes through the server-to-mobile map first.

   The runtime implements the maps with the per-device function
   address tables and charges the translation time that Figure 7
   reports as "function pointer translation". *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty

type stats = { load_maps : int; store_maps : int }

let run_func (f : Ir.func) : Ir.func * stats =
  let loads = ref 0 and stores = ref 0 in
  let expand supply (instr : Ir.instr) : Ir.instr list option =
    match instr with
    | Ir.Assign (r, (Ir.Load (Ty.Fn_ptr _, _) as load)) ->
      incr loads;
      let raw = Ir.fresh_reg supply in
      Some
        [
          Ir.Assign (raw, load);
          Ir.Assign (r, Ir.Fn_map (Ir.Mobile_to_server, Ir.Reg raw));
        ]
    | Ir.Store ((Ty.Fn_ptr _ as ty), v, a) ->
      incr stores;
      let mapped = Ir.fresh_reg supply in
      Some
        [
          Ir.Assign (mapped, Ir.Fn_map (Ir.Server_to_mobile, v));
          Ir.Store (ty, Ir.Reg mapped, a);
        ]
    | Ir.Assign (_, _) | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> None
  in
  let f' = Rewrite.expand_instrs ~expand f in
  (f', { load_maps = !loads; store_maps = !stores })

let run (m : Ir.modul) : Ir.modul * stats =
  let acc = ref { load_maps = 0; store_maps = 0 } in
  let funcs =
    List.map
      (fun f ->
        let f', s = run_func f in
        acc :=
          {
            load_maps = !acc.load_maps + s.load_maps;
            store_maps = !acc.store_maps + s.store_maps;
          };
        f')
      m.Ir.m_funcs
  in
  ({ m with Ir.m_funcs = funcs }, !acc)
