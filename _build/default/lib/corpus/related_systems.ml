(* Table 5: comparison of computation offloading systems. *)

type automation = Manual | Annotation | Automatic
type decision = Static | Dynamic
type complexity = Simple | Complex

type system = {
  sys_name : string;
  sys_automation : automation;
  sys_decision : decision;
  sys_requires_vm : bool;
  sys_language : string;
  sys_complexity : complexity;
}

let systems = [
  { sys_name = "Cuckoo"; sys_automation = Manual; sys_decision = Static;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Complex };
  { sys_name = "Li et al."; sys_automation = Manual; sys_decision = Static;
    sys_requires_vm = false; sys_language = "C"; sys_complexity = Simple };
  { sys_name = "Roam"; sys_automation = Manual; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Complex };
  { sys_name = "MAUI"; sys_automation = Annotation; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "C#"; sys_complexity = Complex };
  { sys_name = "ThinkAir"; sys_automation = Annotation;
    sys_decision = Dynamic; sys_requires_vm = true; sys_language = "Java";
    sys_complexity = Complex };
  { sys_name = "Wang and Li"; sys_automation = Annotation;
    sys_decision = Dynamic; sys_requires_vm = false; sys_language = "C";
    sys_complexity = Simple };
  { sys_name = "DiET"; sys_automation = Automatic; sys_decision = Static;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Simple };
  { sys_name = "Chen et al."; sys_automation = Automatic;
    sys_decision = Dynamic; sys_requires_vm = true; sys_language = "Java";
    sys_complexity = Simple };
  { sys_name = "HELVM"; sys_automation = Automatic; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Simple };
  { sys_name = "OLIE"; sys_automation = Automatic; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Complex };
  { sys_name = "CloneCloud"; sys_automation = Automatic;
    sys_decision = Dynamic; sys_requires_vm = true; sys_language = "Java";
    sys_complexity = Complex };
  { sys_name = "COMET"; sys_automation = Automatic; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Complex };
  { sys_name = "CMcloud"; sys_automation = Automatic; sys_decision = Dynamic;
    sys_requires_vm = true; sys_language = "Java"; sys_complexity = Complex };
  { sys_name = "Native Offloader"; sys_automation = Automatic;
    sys_decision = Dynamic; sys_requires_vm = false; sys_language = "C";
    sys_complexity = Complex };
]

let automation_to_string = function
  | Manual -> "No (Manual)"
  | Annotation -> "No (Annotation)"
  | Automatic -> "Yes"

let decision_to_string = function Static -> "Static" | Dynamic -> "Dynamic"
let complexity_to_string = function Simple -> "Simple" | Complex -> "Complex"

(* The paper's claim: only Native Offloader combines full automation,
   dynamic decisions, no VM, native C, and complex applications. *)
let unique_full_combination () =
  List.filter
    (fun s ->
      s.sys_automation = Automatic && s.sys_decision = Dynamic
      && (not s.sys_requires_vm)
      && String.equal s.sys_language "C"
      && s.sys_complexity = Complex)
    systems
