(* The top-20 open-source Android application survey behind Table 2.

   Table 2 is survey data (F-Droid applications, measured under the
   described runtime behaviours), not a system experiment, so we
   reproduce it as a dataset plus the derived statistics the paper's
   argument rests on: "around one third of the 20 applications include
   native codes more than 50% and spend more than 20% of the total
   execution time to execute them." *)

type app = {
  app_name : string;
  app_version : string;
  app_description : string;
  app_native_loc : int;          (* C/C++ lines *)
  app_total_loc : int;
  app_runtime_desc : string;     (* measured behaviour *)
  app_native_time_pct : float;   (* % execution time in native code *)
}

let apps = [
  { app_name = "AdAway"; app_version = "3.0.2"; app_description = "AD blocker";
    app_native_loc = 132_882; app_total_loc = 310_321;
    app_runtime_desc = "Read articles with ads"; app_native_time_pct = 21.54 };
  { app_name = "Orbot"; app_version = "14.1.4-noPIE";
    app_description = "Tor client"; app_native_loc = 675_851;
    app_total_loc = 969_243; app_runtime_desc = "Web browsing with Tor";
    app_native_time_pct = 61.98 };
  { app_name = "Firefox"; app_version = "40.0";
    app_description = "Web browser"; app_native_loc = 8_094_678;
    app_total_loc = 15_509_820; app_runtime_desc = "Web browsing 4 websites";
    app_native_time_pct = 88.27 };
  { app_name = "VLC Player"; app_version = "1.5.1.1";
    app_description = "Media player"; app_native_loc = 3_584_526;
    app_total_loc = 6_433_726;
    app_runtime_desc = "Play a movie w/o HW decoder";
    app_native_time_pct = 92.34 };
  { app_name = "Open Camera"; app_version = "1.2";
    app_description = "Camera"; app_native_loc = 0; app_total_loc = 10_336;
    app_runtime_desc = "N/A"; app_native_time_pct = 0.0 };
  { app_name = "osmAnd"; app_version = "2.1.1";
    app_description = "Map/Navigation"; app_native_loc = 53_695;
    app_total_loc = 450_573; app_runtime_desc = "Search nearby places";
    app_native_time_pct = 23.86 };
  { app_name = "Syncthing"; app_version = "0.5.0-beta5";
    app_description = "File synchronizer"; app_native_loc = 0;
    app_total_loc = 59_461; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "AFWall+"; app_version = "1.3.4.1";
    app_description = "Network traffic controller"; app_native_loc = 1_514;
    app_total_loc = 59_741; app_runtime_desc = "Web browsing 4 websites";
    app_native_time_pct = 0.30 };
  { app_name = "2048"; app_version = "1.95"; app_description = "Puzzle game";
    app_native_loc = 0; app_total_loc = 2_232; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "K-9 Mail"; app_version = "4.804";
    app_description = "Email client"; app_native_loc = 0;
    app_total_loc = 96_588; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "PDF Reader"; app_version = "0.4.0";
    app_description = "PDF viewer"; app_native_loc = 334_489;
    app_total_loc = 594_434; app_runtime_desc = "Read a book with zoom";
    app_native_time_pct = 28.30 };
  { app_name = "ownCloud"; app_version = "1.5.8";
    app_description = "File synchronizer"; app_native_loc = 0;
    app_total_loc = 77_141; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "DAVdroid"; app_version = "0.6.2";
    app_description = "Private data synchronizer"; app_native_loc = 0;
    app_total_loc = 7_435; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "Barcode Scanner"; app_version = "4.7.0";
    app_description = "2D/QR code scanner"; app_native_loc = 0;
    app_total_loc = 50_201; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "SatStat"; app_version = "2";
    app_description = "Sensor status monitor"; app_native_loc = 0;
    app_total_loc = 7_480; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "Cool Reader"; app_version = "3.1.2-72";
    app_description = "Ebook reader"; app_native_loc = 491_556;
    app_total_loc = 681_001; app_runtime_desc = "Read a book";
    app_native_time_pct = 97.73 };
  { app_name = "OS Monitor"; app_version = "3.4.1.0";
    app_description = "OS monitor"; app_native_loc = 5_902;
    app_total_loc = 74_513;
    app_runtime_desc = "Read network and process info.";
    app_native_time_pct = 4.38 };
  { app_name = "Orweb"; app_version = "0.6.1";
    app_description = "Web browser"; app_native_loc = 0;
    app_total_loc = 14_124; app_runtime_desc = "N/A";
    app_native_time_pct = 0.0 };
  { app_name = "PPSSPP"; app_version = "1.0.1.0";
    app_description = "PSP emulator"; app_native_loc = 1_304_973;
    app_total_loc = 1_438_322; app_runtime_desc = "Play a game for 1 minute";
    app_native_time_pct = 97.68 };
  { app_name = "Adblock Plus"; app_version = "1.1.3";
    app_description = "AD blocker"; app_native_loc = 2_102;
    app_total_loc = 63_779; app_runtime_desc = "Read articles with ads";
    app_native_time_pct = 22.83 };
]

let native_loc_ratio app =
  if app.app_total_loc = 0 then 0.0
  else 100.0 *. float_of_int app.app_native_loc /. float_of_int app.app_total_loc

(* The paper's headline statistics over the corpus. *)
type summary = {
  total_apps : int;
  apps_with_native : int;
  apps_majority_native_loc : int;    (* native LoC > 50 % *)
  apps_heavy_native_time : int;      (* native time > 20 % *)
}

let summarize () =
  {
    total_apps = List.length apps;
    apps_with_native = List.length (List.filter (fun a -> a.app_native_loc > 0) apps);
    apps_majority_native_loc =
      List.length (List.filter (fun a -> native_loc_ratio a > 50.0) apps);
    apps_heavy_native_time =
      List.length (List.filter (fun a -> a.app_native_time_pct > 20.0) apps);
  }
