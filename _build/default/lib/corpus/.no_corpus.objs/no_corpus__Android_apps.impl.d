lib/corpus/android_apps.ml: List
