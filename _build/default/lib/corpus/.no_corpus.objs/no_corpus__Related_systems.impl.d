lib/corpus/related_systems.ml: List String
