(* Per-device function address tables.

   "Like global variables, the Native Offloader compiler cannot
   manipulate the addresses of functions that the back-end compilers
   decide" (Section 3.4).  We model this faithfully: each device
   assigns its own code addresses to functions, so a function pointer
   produced on one device is meaningless on the other unless it goes
   through the function-pointer mapping pass.  The *unified* convention
   is that memory holds mobile addresses (the mobile layout is the
   standard one). *)

type t = {
  base : int;
  step : int;
  by_name : (string, int) Hashtbl.t;
  by_addr : (int, string) Hashtbl.t;
}

exception Not_a_function of int   (* address *)

let create ~base ~step (funcs : string list) =
  let t =
    { base; step; by_name = Hashtbl.create 64; by_addr = Hashtbl.create 64 }
  in
  List.iteri
    (fun i name ->
      let addr = base + (i * step) in
      Hashtbl.replace t.by_name name addr;
      Hashtbl.replace t.by_addr addr name)
    funcs;
  t

(* Mobile code addresses sit in the low 32 bits (a 32-bit device);
   server addresses sit above 2^32, so confusing the two is *always*
   detectable in tests. *)
let mobile funcs = create ~base:0x0040_0000 ~step:64 funcs
let server funcs = create ~base:0x7f00_0000_0000 ~step:128 funcs

let addr_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "Fn_table.addr_of: %s" name)

let name_of t addr =
  match Hashtbl.find_opt t.by_addr addr with
  | Some name -> name
  | None -> raise (Not_a_function addr)

let mem_addr t addr = Hashtbl.mem t.by_addr addr
