(** Per-device function address tables.

    "The Native Offloader compiler cannot manipulate the addresses of
    functions that the back-end compilers decide" (§3.4): each device
    assigns its own code addresses, so a function pointer from one
    device is meaningless on the other without the mapping pass.
    Memory holds {e mobile} addresses (the unified standard); mobile
    addresses sit below 2^32 and server addresses above, so confusing
    them is always detectable. *)

type t

exception Not_a_function of int   (** address *)

val create : base:int -> step:int -> string list -> t
val mobile : string list -> t
val server : string list -> t

val addr_of : t -> string -> int
(** @raise Invalid_argument on an unknown function. *)

val name_of : t -> int -> string
(** @raise Not_a_function on a foreign or invalid address — exactly
    what an untranslated cross-device function pointer produces. *)

val mem_addr : t -> int -> bool
