(* Materialization of module globals into a device memory.

   Global addresses are *device specific* (each back-end compiler
   places globals independently — the very problem the referenced-
   global reallocation pass of Section 3.2 solves), so each device gets
   its own address assignment from its own base. *)

module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Ir = No_ir.Ir
module Ty = No_ir.Ty

(* Assign addresses to globals sequentially from [base], respecting
   alignment under [layout]. *)
let assign_addresses (layout : Layout.env) ~base (globals : Ir.global list) :
    (string * int) list * int =
  let assignments, next =
    List.fold_left
      (fun (acc, offset) (g : Ir.global) ->
        let addr = Layout.align_up offset (Layout.align_of layout g.Ir.g_ty) in
        ((g.Ir.g_name, addr) :: acc, addr + Layout.size_of layout g.Ir.g_ty))
      ([], base) globals
  in
  (List.rev assignments, next)

(* Write one initializer at [addr].  [fn_addr] resolves function names
   to this setup's code addresses (the unified convention stores mobile
   addresses). *)
let rec write_init ~(layout : Layout.env) ~(endianness : Arch.endianness)
    ~(write_byte : int -> int -> unit) ~(fn_addr : string -> int) ~addr
    (ty : Ty.t) (init : Ir.const_init) : unit =
  let store_bits nbytes bits =
    No_mem.Scalar.store_int endianness ~write_byte addr nbytes bits
  in
  match init with
  | Ir.Zero_init ->
    let size = Layout.size_of layout ty in
    for i = 0 to size - 1 do
      write_byte (addr + i) 0
    done
  | Ir.Int_init (v, ity) -> store_bits (Layout.size_of layout ity) v
  | Ir.Float_init (v, fty) ->
    let f32 = Ty.equal fty Ty.F32 in
    store_bits (Layout.size_of layout fty) (No_mem.Scalar.float_to_bits ~f32 v)
  | Ir.Fn_init name -> store_bits layout.Layout.ptr_bytes (Int64.of_int (fn_addr name))
  | Ir.String_init s ->
    String.iteri (fun i c -> write_byte (addr + i) (Char.code c)) s;
    write_byte (addr + String.length s) 0
  | Ir.Array_init items -> (
    match ty with
    | Ty.Array (elem, _) ->
      let esize = Layout.size_of layout elem in
      List.iteri
        (fun i item ->
          write_init ~layout ~endianness ~write_byte ~fn_addr
            ~addr:(addr + (i * esize)) elem item)
        items
    | _ -> invalid_arg "Loader.write_init: array init for non-array")
  | Ir.Struct_init items -> (
    match ty with
    | Ty.Struct sname ->
      let fields = Layout.struct_layout layout sname in
      List.iter2
        (fun item (_, offset, fty, _) ->
          write_init ~layout ~endianness ~write_byte ~fn_addr
            ~addr:(addr + offset) fty item)
        items fields
    | _ -> invalid_arg "Loader.write_init: struct init for non-struct")
