lib/exec/loader.ml: Char Int64 List No_arch No_ir No_mem String
