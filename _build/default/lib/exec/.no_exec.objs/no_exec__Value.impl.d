lib/exec/value.ml: Float Fmt Int64
