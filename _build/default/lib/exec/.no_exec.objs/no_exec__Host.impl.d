lib/exec/host.ml: Array Bytes Console Fn_table Fs Hashtbl List Loader No_arch No_ir No_mem Printf Value
