lib/exec/fn_table.ml: Hashtbl List Printf
