lib/exec/console.mli:
