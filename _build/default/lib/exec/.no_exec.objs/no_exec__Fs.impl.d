lib/exec/fs.ml: Bytes Hashtbl List String
