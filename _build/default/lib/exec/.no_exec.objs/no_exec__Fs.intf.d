lib/exec/fs.mli: Bytes
