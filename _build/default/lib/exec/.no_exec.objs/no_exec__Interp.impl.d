lib/exec/interp.ml: Array Buffer Bytes Char Console Float Fn_table Fs Hashtbl Host Int32 Int64 List No_arch No_ir No_mem Printf Value
