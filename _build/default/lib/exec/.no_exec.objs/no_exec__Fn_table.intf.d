lib/exec/fn_table.mli:
