lib/exec/value.mli: Format
