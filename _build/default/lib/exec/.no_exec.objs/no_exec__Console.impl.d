lib/exec/console.ml: Buffer Int64
