(** Call graph over a module's IR functions.

    Used by the machine-specific filter (specificity propagates to
    callers), by server-side unused-function removal (§3.3) and by the
    target selector's subsumption rule.  Address-taken functions are
    conservatively reachable from any indirect call. *)

module String_set : Set.S with type elt = string
module String_map : Map.S with type key = string

type t = {
  callees : String_set.t String_map.t;
  callers : String_set.t String_map.t;
  address_taken : String_set.t;
  has_indirect : String_set.t;
}

val build : No_ir.Ir.modul -> t
(** Function-pointer initializers of both ordinary and UVA-reallocated
    globals count as address-taking. *)

val callees_of : t -> string -> String_set.t
val callers_of : t -> string -> String_set.t
val is_address_taken : t -> string -> bool
val has_indirect_call : t -> string -> bool

val transitive_callees : t -> string list -> String_set.t
(** Everything reachable from [roots], including the roots; indirect
    calls pull in all address-taken functions. *)
