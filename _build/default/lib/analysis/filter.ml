(* The machine-specific function filter (paper Section 3.1).

   "The filter considers an instruction machine specific if the
   instruction is one of the following: assembly instruction, system
   call, unknown external library call, I/O instruction.  [...] if the
   I/O functions are remotely executable through remote I/O functions,
   the filter excludes the I/O instructions from the machine specific
   instructions."

   Interactive input (the scan builtins) is never remotable (it needs
   the user);
   output and file I/O are remotable, so they do not disqualify a
   task, but we record them — the partitioner must rewrite them and
   the estimator should know the task will pay remote-I/O costs.
   Machine-specificity propagates up the call graph: a caller of a
   machine-specific function cannot be offloaded either. *)

module Ir = No_ir.Ir
module Builtins = No_ir.Builtins
module String_set = Callgraph.String_set
module String_map = Map.Make (String)

type reason =
  | Has_asm
  | Has_syscall
  | Has_unknown_external of string
  | Has_interactive_input of string
  | Calls_machine_specific of string

type verdict = {
  v_func : string;
  v_machine_specific : reason option;      (* None = offloadable *)
  v_output_io : String_set.t;              (* output builtins used *)
  v_file_io : String_set.t;                (* file builtins used *)
  v_uses_fn_ptr : bool;                    (* has indirect calls *)
}

let reason_to_string = function
  | Has_asm -> "contains inline assembly"
  | Has_syscall -> "performs a system call"
  | Has_unknown_external name -> "calls unknown external " ^ name
  | Has_interactive_input name -> "performs interactive input via " ^ name
  | Calls_machine_specific callee -> "calls machine-specific " ^ callee

let first_some a b = match a with Some _ -> a | None -> b

(* Intrinsic verdict for one function, ignoring callees. *)
let local_verdict (m : Ir.modul) (f : Ir.func) : verdict =
  let module_fn name = Ir.find_func m name <> None in
  let extern name = List.mem_assoc name m.Ir.m_externs in
  let result =
    Ir.fold_instrs
      (fun (specific, outputs, files) instr ->
        match instr with
        | Ir.Asm _ -> (Some Has_asm, outputs, files)
        | Ir.Assign (_, rv) | Ir.Effect rv -> (
          match rv with
          | Ir.Call (name, _) when not (module_fn name) -> (
            match Builtins.kind_of name with
            | Builtins.Syscall ->
              (first_some specific (Some Has_syscall), outputs, files)
            | Builtins.Input_io ->
              ( first_some specific (Some (Has_interactive_input name)),
                outputs, files )
            | Builtins.Unknown when not (extern name) ->
              ( first_some specific (Some (Has_unknown_external name)),
                outputs, files )
            | Builtins.Output_io ->
              (specific, String_set.add name outputs, files)
            | Builtins.File_io -> (specific, outputs, String_set.add name files)
            | Builtins.Alloc | Builtins.Dealloc | Builtins.Uva_alloc
            | Builtins.Uva_dealloc | Builtins.Remote_io | Builtins.Pure
            | Builtins.Memory | Builtins.Unknown ->
              (specific, outputs, files))
          | Ir.Call _ | Ir.Bin _ | Ir.Cmp _ | Ir.Cast _ | Ir.Select _
          | Ir.Load _ | Ir.Alloca _ | Ir.Gep _ | Ir.Call_ind _ | Ir.Bswap _
          | Ir.Fn_map _ -> (specific, outputs, files))
        | Ir.Store _ -> (specific, outputs, files))
      (None, String_set.empty, String_set.empty)
      f
  in
  let specific, outputs, files = result in
  {
    v_func = f.Ir.f_name;
    v_machine_specific = specific;
    v_output_io = outputs;
    v_file_io = files;
    v_uses_fn_ptr = Ir.has_indirect_call f;
  }

type t = verdict String_map.t

(* Full filter: propagate machine-specificity through the call graph
   to a fixpoint.  Indirect calls are *not* propagated through — the
   function-pointer mapping optimization (Section 3.4) makes indirect
   calls offloadable, and address-taken machine-specific functions are
   guarded at run time (the runtime traps a server-side indirect call
   into a machine-specific target; our workloads never do this, as the
   paper's evaluation programs never do). *)
let analyze (m : Ir.modul) : t =
  let base =
    List.fold_left
      (fun acc (f : Ir.func) ->
        String_map.add f.Ir.f_name (local_verdict m f) acc)
      String_map.empty m.Ir.m_funcs
  in
  let cg = Callgraph.build m in
  let rec fixpoint verdicts =
    let verdicts', changed =
      String_map.fold
        (fun name v (acc, changed) ->
          match v.v_machine_specific with
          | Some _ -> (acc, changed)
          | None -> (
            let bad_callee =
              String_set.fold
                (fun callee found ->
                  match found with
                  | Some _ -> found
                  | None -> (
                    match String_map.find_opt callee acc with
                    | Some cv when cv.v_machine_specific <> None -> Some callee
                    | Some _ | None -> None))
                (Callgraph.callees_of cg name)
                None
            in
            match bad_callee with
            | Some callee ->
              ( String_map.add name
                  { v with v_machine_specific = Some (Calls_machine_specific callee) }
                  acc,
                true )
            | None -> (acc, changed)))
        verdicts (verdicts, false)
    in
    if changed then fixpoint verdicts' else verdicts'
  in
  fixpoint base

let verdict_of (t : t) name = String_map.find_opt name t

let is_offloadable (t : t) name =
  match String_map.find_opt name t with
  | Some v -> v.v_machine_specific = None
  | None -> false

let offloadable_functions (t : t) =
  String_map.fold
    (fun name v acc -> if v.v_machine_specific = None then name :: acc else acc)
    t []
  |> List.sort String.compare
