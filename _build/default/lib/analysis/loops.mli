(** Natural-loop detection.

    Back edges (u → h with h dominating u) induce natural loops; the
    builder names loop headers "name.cond", so detected loops carry
    the source-level names the paper's tables use ("for_i",
    "try_place_while.cond", "main_for.cond548"). *)

module String_set : Set.S with type elt = string

type loop = {
  l_func : string;
  l_header : string;       (** header block label *)
  l_name : string;         (** display name: header minus ".cond" *)
  l_blocks : String_set.t;
  l_depth : int;           (** 1 = outermost *)
}

val loops_of_func : No_ir.Ir.func -> loop list
(** Sorted outermost-first; loops sharing a header are merged. *)

val loops_of_module : No_ir.Ir.modul -> loop list

val innermost_containing :
  loop list -> func:string -> label:string -> loop option
(** The deepest loop whose body contains [label] — how the profiler
    attributes block entries. *)
