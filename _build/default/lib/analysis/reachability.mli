(** Unused-function removal (paper §3.3: "the compiler finds and
    removes unused functions at server-side with a call graph" —
    getPlayerTurn disappears in Figure 3(c)). *)

module String_set = Callgraph.String_set

val live_functions :
  No_ir.Ir.modul -> roots:string list -> String_set.t

val remove_unused :
  No_ir.Ir.modul -> roots:string list -> No_ir.Ir.modul * string list
(** Returns the trimmed module and the removed function names. *)
