(* Unused-function removal support (paper Section 3.3, Figure 3(c):
   "the compiler finds and removes unused functions at server-side
   with a call graph").

   A function survives on the server if it is reachable from any
   offloading target, or if its address is taken (an indirect call may
   reach it).  Everything else — notably the mobile-only interactive
   paths like getPlayerTurn — is removed from the server partition. *)

module Ir = No_ir.Ir
module String_set = Callgraph.String_set

let live_functions (m : Ir.modul) ~(roots : string list) : String_set.t =
  let cg = Callgraph.build m in
  Callgraph.transitive_callees cg roots

let remove_unused (m : Ir.modul) ~(roots : string list) : Ir.modul * string list
    =
  let live = live_functions m ~roots in
  let kept, removed =
    List.partition (fun (f : Ir.func) -> String_set.mem f.Ir.f_name live)
      m.Ir.m_funcs
  in
  ( { m with Ir.m_funcs = kept },
    List.map (fun (f : Ir.func) -> f.Ir.f_name) removed )
