(** The machine-specific function filter (paper §3.1).

    A function cannot be offloaded if it contains inline assembly,
    performs a system call, calls an unknown external, performs
    interactive input — or (transitively) calls a function that does.
    Output and file I/O do {e not} disqualify: the remote-I/O rewrite
    (§3.4) makes them server-executable; they are recorded so the
    partitioner knows to rewrite them. *)

module String_set = Callgraph.String_set
module String_map : Map.S with type key = string

type reason =
  | Has_asm
  | Has_syscall
  | Has_unknown_external of string
  | Has_interactive_input of string
  | Calls_machine_specific of string

type verdict = {
  v_func : string;
  v_machine_specific : reason option;  (** [None] = offloadable *)
  v_output_io : String_set.t;          (** output builtins used *)
  v_file_io : String_set.t;            (** file builtins used *)
  v_uses_fn_ptr : bool;                (** has indirect calls *)
}

type t = verdict String_map.t

val reason_to_string : reason -> string

val local_verdict : No_ir.Ir.modul -> No_ir.Ir.func -> verdict
(** Intrinsic verdict, ignoring callees. *)

val analyze : No_ir.Ir.modul -> t
(** Full analysis: machine-specificity propagated through the call
    graph to a fixpoint. *)

val verdict_of : t -> string -> verdict option
val is_offloadable : t -> string -> bool
val offloadable_functions : t -> string list
