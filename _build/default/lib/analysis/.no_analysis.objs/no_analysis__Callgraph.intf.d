lib/analysis/callgraph.mli: Map No_ir Set
