lib/analysis/filter.mli: Callgraph Map No_ir
