lib/analysis/reachability.ml: Callgraph List No_ir
