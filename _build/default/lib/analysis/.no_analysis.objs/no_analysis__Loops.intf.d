lib/analysis/loops.mli: No_ir Set
