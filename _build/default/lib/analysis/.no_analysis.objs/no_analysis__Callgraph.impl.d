lib/analysis/callgraph.ml: List Map No_ir Option Set String
