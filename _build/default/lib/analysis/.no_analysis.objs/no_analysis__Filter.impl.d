lib/analysis/filter.ml: Callgraph List Map No_ir String
