lib/analysis/loops.ml: Dominators Filename List Map No_ir Option Set String
