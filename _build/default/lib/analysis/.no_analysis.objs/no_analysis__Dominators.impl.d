lib/analysis/dominators.ml: Hashtbl List Map No_ir Option Set String
