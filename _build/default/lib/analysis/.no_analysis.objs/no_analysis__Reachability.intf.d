lib/analysis/reachability.mli: Callgraph No_ir
