(* Call graph over the module's IR functions.

   Used by the machine-specific filter (a function calling a machine-
   specific function is itself machine specific), by the unused-
   function removal of the server partition (Section 3.3), and by the
   profiler to attribute inclusive times.  Functions whose address is
   taken ([Fn_addr] operands or function-pointer global initializers)
   are conservatively kept reachable: an indirect call may target any
   of them. *)

module Ir = No_ir.Ir

module String_set = Set.Make (String)
module String_map = Map.Make (String)

type t = {
  callees : String_set.t String_map.t;     (* direct calls *)
  callers : String_set.t String_map.t;
  address_taken : String_set.t;
  has_indirect : String_set.t;             (* functions with indirect calls *)
}

let address_taken_of_func (f : Ir.func) =
  Ir.fold_instrs
    (fun acc instr ->
      List.fold_left
        (fun acc op ->
          match op with
          | Ir.Fn_addr name -> String_set.add name acc
          | Ir.Reg _ | Ir.Int _ | Ir.Float _ | Ir.Null _ | Ir.Global _ -> acc)
        acc
        (Ir.operands_of_instr instr))
    String_set.empty f

let rec address_taken_of_init (init : Ir.const_init) =
  match init with
  | Ir.Fn_init name -> String_set.singleton name
  | Ir.Array_init items | Ir.Struct_init items ->
    List.fold_left
      (fun acc item -> String_set.union acc (address_taken_of_init item))
      String_set.empty items
  | Ir.Zero_init | Ir.Int_init _ | Ir.Float_init _ | Ir.String_init _ ->
    String_set.empty

let build (m : Ir.modul) : t =
  let module_fns =
    String_set.of_list (List.map (fun (f : Ir.func) -> f.Ir.f_name) m.Ir.m_funcs)
  in
  let callees =
    List.fold_left
      (fun acc (f : Ir.func) ->
        let direct =
          Ir.direct_callees f |> List.filter (fun n -> String_set.mem n module_fns)
        in
        String_map.add f.Ir.f_name (String_set.of_list direct) acc)
      String_map.empty m.Ir.m_funcs
  in
  let callers =
    String_map.fold
      (fun caller targets acc ->
        String_set.fold
          (fun callee acc ->
            let prev =
              Option.value ~default:String_set.empty
                (String_map.find_opt callee acc)
            in
            String_map.add callee (String_set.add caller prev) acc)
          targets acc)
      callees String_map.empty
  in
  let address_taken =
    List.fold_left
      (fun acc (f : Ir.func) -> String_set.union acc (address_taken_of_func f))
      (List.fold_left
         (fun acc (g : Ir.global) ->
           String_set.union acc (address_taken_of_init g.Ir.g_init))
         String_set.empty
         (* Globals moved to the UVA heap still pin the functions
            their initializers point to. *)
         (m.Ir.m_globals @ m.Ir.m_uva_globals))
      m.Ir.m_funcs
    |> String_set.inter module_fns
  in
  let has_indirect =
    List.fold_left
      (fun acc (f : Ir.func) ->
        if Ir.has_indirect_call f then String_set.add f.Ir.f_name acc else acc)
      String_set.empty m.Ir.m_funcs
  in
  { callees; callers; address_taken; has_indirect }

let callees_of t name =
  Option.value ~default:String_set.empty (String_map.find_opt name t.callees)

let callers_of t name =
  Option.value ~default:String_set.empty (String_map.find_opt name t.callers)

let is_address_taken t name = String_set.mem name t.address_taken
let has_indirect_call t name = String_set.mem name t.has_indirect

(* All functions transitively callable from [roots].  Indirect calls
   add every address-taken function. *)
let transitive_callees t (roots : string list) : String_set.t =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | name :: rest ->
      if String_set.mem name visited then go visited rest
      else
        let visited = String_set.add name visited in
        let next = callees_of t name in
        let next =
          if has_indirect_call t name then
            String_set.union next t.address_taken
          else next
        in
        go visited (String_set.elements next @ rest)
  in
  go String_set.empty roots
