(* Natural-loop detection.

   A back edge is an edge u -> h where h dominates u; the natural loop
   of the edge is h plus every block that reaches u without passing
   through h.  The builder names loop headers "name.cond", so detected
   loops carry the source-level names the paper's tables use
   ("for_i", "try_place_while.cond", "main_for.cond548", ...). *)

module Ir = No_ir.Ir
module String_set = Set.Make (String)
module String_map = Map.Make (String)

type loop = {
  l_func : string;
  l_header : string;           (* header block label *)
  l_name : string;             (* display name: header minus ".cond" *)
  l_blocks : String_set.t;
  l_depth : int;               (* 1 = outermost *)
}

let display_name header =
  match String.length header >= 5 && Filename.check_suffix header ".cond" with
  | true -> String.sub header 0 (String.length header - 5)
  | false -> header

let natural_loop (doms : Dominators.t) ~(source : string) ~(header : string) :
    String_set.t =
  let preds label =
    Option.value ~default:String_set.empty
      (String_map.find_opt label doms.Dominators.cfg.Dominators.preds)
  in
  let rec grow body frontier =
    match frontier with
    | [] -> body
    | label :: rest ->
      if String_set.mem label body then grow body rest
      else
        grow (String_set.add label body)
          (String_set.elements (preds label) @ rest)
  in
  grow (String_set.singleton header) [ source ]

let loops_of_func (f : Ir.func) : loop list =
  let doms = Dominators.compute f in
  let cfg = doms.Dominators.cfg in
  (* Find back edges. *)
  let back_edges =
    List.concat_map
      (fun label ->
        let succs =
          Option.value ~default:String_set.empty
            (String_map.find_opt label cfg.Dominators.succs)
        in
        String_set.fold
          (fun succ acc ->
            if Dominators.dominates doms ~dom:succ ~sub:label then
              (label, succ) :: acc
            else acc)
          succs [])
      cfg.Dominators.blocks
  in
  (* Merge loops sharing a header (multiple back edges, e.g. continue). *)
  let by_header =
    List.fold_left
      (fun acc (source, header) ->
        let body = natural_loop doms ~source ~header in
        let prev =
          Option.value ~default:String_set.empty (String_map.find_opt header acc)
        in
        String_map.add header (String_set.union prev body) acc)
      String_map.empty back_edges
  in
  let loops =
    String_map.fold
      (fun header body acc ->
        {
          l_func = f.Ir.f_name;
          l_header = header;
          l_name = display_name header;
          l_blocks = body;
          l_depth = 1;
        }
        :: acc)
      by_header []
  in
  (* Nesting depth: loop A contains loop B if A's body contains B's
     header and they differ. *)
  List.map
    (fun l ->
      let depth =
        List.fold_left
          (fun depth outer ->
            if
              (not (String.equal outer.l_header l.l_header))
              && String_set.mem l.l_header outer.l_blocks
            then depth + 1
            else depth)
          1 loops
      in
      { l with l_depth = depth })
    loops
  |> List.sort (fun a b -> compare (a.l_depth, a.l_header) (b.l_depth, b.l_header))

let loops_of_module (m : Ir.modul) : loop list =
  List.concat_map loops_of_func m.Ir.m_funcs

(* The innermost loop containing [label], if any — the profiler uses
   this to attribute block entries to loops. *)
let innermost_containing loops ~func ~label =
  List.fold_left
    (fun best l ->
      if String.equal l.l_func func && String_set.mem label l.l_blocks then
        match best with
        | Some b when b.l_depth >= l.l_depth -> best
        | Some _ | None -> Some l
      else best)
    None loops
