(* Dominator computation on a function's control-flow graph.

   Iterative dataflow formulation (Cooper–Harvey–Kennedy "engineered"
   algorithm simplified to set intersection): good enough for the
   block counts our workloads produce, and simple enough to trust.
   Used by {!Loops} to find back edges and natural loops, which the
   hot-loop profiler reports alongside functions (Table 3 profiles
   for_i / for_j of the chess example). *)

module Ir = No_ir.Ir
module String_set = Set.Make (String)
module String_map = Map.Make (String)

type cfg = {
  entry : string;
  blocks : string list;                        (* reverse post-order *)
  succs : String_set.t String_map.t;
  preds : String_set.t String_map.t;
}

let successors_map (f : Ir.func) =
  List.fold_left
    (fun acc (b : Ir.block) ->
      String_map.add b.Ir.label
        (String_set.of_list (Ir.successors b.Ir.term))
        acc)
    String_map.empty f.Ir.f_blocks

let cfg_of_func (f : Ir.func) : cfg =
  let succs = successors_map f in
  let entry = (Ir.entry_block f).Ir.label in
  (* Depth-first postorder from the entry; unreachable blocks are
     excluded (they have no dominator). *)
  let visited = Hashtbl.create 64 in
  let postorder = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      String_set.iter dfs
        (Option.value ~default:String_set.empty (String_map.find_opt label succs));
      postorder := label :: !postorder
    end
  in
  dfs entry;
  let blocks = !postorder in (* already reversed: reverse post-order *)
  let preds =
    List.fold_left
      (fun acc label ->
        let targets =
          Option.value ~default:String_set.empty (String_map.find_opt label succs)
        in
        String_set.fold
          (fun succ acc ->
            if Hashtbl.mem visited succ then
              let prev =
                Option.value ~default:String_set.empty
                  (String_map.find_opt succ acc)
              in
              String_map.add succ (String_set.add label prev) acc
            else acc)
          targets acc)
      String_map.empty blocks
  in
  { entry; blocks; succs; preds }

(* Dominator sets: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds).
   Iterate to fixpoint over reverse post-order. *)
type t = {
  cfg : cfg;
  dom : String_set.t String_map.t;
}

let compute (f : Ir.func) : t =
  let cfg = cfg_of_func f in
  let all = String_set.of_list cfg.blocks in
  let init =
    List.fold_left
      (fun acc label ->
        String_map.add label
          (if String.equal label cfg.entry then
             String_set.singleton cfg.entry
           else all)
          acc)
      String_map.empty cfg.blocks
  in
  let step dom =
    List.fold_left
      (fun (dom, changed) label ->
        if String.equal label cfg.entry then (dom, changed)
        else
          let preds =
            Option.value ~default:String_set.empty
              (String_map.find_opt label cfg.preds)
          in
          let meet =
            String_set.fold
              (fun pred acc ->
                let pdom = String_map.find pred dom in
                match acc with
                | None -> Some pdom
                | Some acc -> Some (String_set.inter acc pdom))
              preds None
          in
          let updated =
            String_set.add label (Option.value ~default:String_set.empty meet)
          in
          if String_set.equal updated (String_map.find label dom) then
            (dom, changed)
          else (String_map.add label updated dom, true))
      (dom, false) cfg.blocks
  in
  let rec fixpoint dom =
    let dom, changed = step dom in
    if changed then fixpoint dom else dom
  in
  { cfg; dom = fixpoint init }

let dominates t ~dom:a ~sub:b =
  match String_map.find_opt b t.dom with
  | Some set -> String_set.mem a set
  | None -> false

let dominators_of t label =
  Option.value ~default:String_set.empty (String_map.find_opt label t.dom)
