(* Ergonomic construction of IR modules.

   Workload programs (the "front end" of our framework, standing in for
   clang) are written against this module.  A module builder [t]
   accumulates structs, globals and functions; a function builder [fb]
   maintains a current block and provides structured control flow
   ([if_], [while_], [for_]) that expands to labeled basic blocks, so
   the natural-loop detector later recovers loops with stable names
   such as "for_i.cond". *)

open Ir

type t = {
  mb_name : string;
  mutable mb_structs : struct_def list;   (* reversed *)
  mutable mb_globals : global list;       (* reversed *)
  mutable mb_funcs : func list;           (* reversed *)
  mutable mb_str_counter : int;
}

type fb = {
  parent : t;
  fn_name : string;
  fn_params : (reg * Ty.t) list;
  fn_ret : Ty.t;
  mutable nreg : int;
  mutable done_blocks : block list;       (* reversed *)
  mutable cur_label : string;
  mutable cur_instrs : instr list;        (* reversed *)
  mutable in_block : bool;
  mutable label_counter : int;
}

let create name =
  { mb_name = name; mb_structs = []; mb_globals = []; mb_funcs = [];
    mb_str_counter = 0 }

let struct_ t name fields =
  t.mb_structs <- { s_name = name; s_fields = fields } :: t.mb_structs;
  Ty.Struct name

let global t name ty init =
  t.mb_globals <- { g_name = name; g_ty = ty; g_init = init } :: t.mb_globals

(* Interned string constant; returns the address operand. *)
let cstr t contents =
  let name = Printf.sprintf "str.%d" t.mb_str_counter in
  t.mb_str_counter <- t.mb_str_counter + 1;
  let ty = Ty.Array (Ty.I8, String.length contents + 1) in
  global t name ty (String_init contents);
  Global name

let finish t =
  {
    m_name = t.mb_name;
    m_structs = List.rev t.mb_structs;
    m_globals = List.rev t.mb_globals;
    m_funcs = List.rev t.mb_funcs;
    m_externs = [];
    m_uva_globals = [];
  }

(* {1 Function construction} *)

let fresh_reg fb =
  let r = fb.nreg in
  fb.nreg <- r + 1;
  r

let fresh_label fb base =
  let n = fb.label_counter in
  fb.label_counter <- n + 1;
  Printf.sprintf "%s.%d" base n

let seal fb term =
  if not fb.in_block then
    invalid_arg
      (Printf.sprintf "Builder: terminating while no block is open in %s"
         fb.fn_name);
  let b =
    { label = fb.cur_label; instrs = List.rev fb.cur_instrs; term }
  in
  fb.done_blocks <- b :: fb.done_blocks;
  fb.in_block <- false;
  fb.cur_instrs <- []

let open_block fb label =
  if fb.in_block then seal fb (Br label);
  fb.cur_label <- label;
  fb.cur_instrs <- [];
  fb.in_block <- true

let emit fb instr =
  if not fb.in_block then
    invalid_arg
      (Printf.sprintf "Builder: emitting into a closed block in %s" fb.fn_name);
  fb.cur_instrs <- instr :: fb.cur_instrs

(* {1 Instruction helpers} *)

let rval fb rv =
  let r = fresh_reg fb in
  emit fb (Assign (r, rv));
  Reg r

let effect fb rv = emit fb (Effect rv)

let bin fb op a b = rval fb (Bin (op, a, b))
let iadd fb a b = bin fb Add a b
let isub fb a b = bin fb Sub a b
let imul fb a b = bin fb Mul a b
let idiv fb a b = bin fb Sdiv a b
let irem fb a b = bin fb Srem a b
let iand fb a b = bin fb And a b
let ior fb a b = bin fb Or a b
let ixor fb a b = bin fb Xor a b
let ishl fb a b = bin fb Shl a b
let ilshr fb a b = bin fb Lshr a b
let iashr fb a b = bin fb Ashr a b
let fadd fb a b = bin fb Fadd a b
let fsub fb a b = bin fb Fsub a b
let fmul fb a b = bin fb Fmul a b
let fdiv fb a b = bin fb Fdiv a b

let cmp fb op a b = rval fb (Cmp (op, a, b))
let cast fb op ~src a ~dst = rval fb (Cast (op, src, a, dst))
let select fb c a b = rval fb (Select (c, a, b))
let load fb ty addr = rval fb (Load (ty, addr))
let store fb ty v addr = emit fb (Store (ty, v, addr))
let alloca fb ty n = rval fb (Alloca (ty, n))
let gep fb ty base path = rval fb (Gep (ty, base, path))
let call fb name args = rval fb (Call (name, args))
let call_void fb name args = effect fb (Call (name, args))
let call_ind fb sg f args = rval fb (Call_ind (sg, f, args))
let call_ind_void fb sg f args = effect fb (Call_ind (sg, f, args))
let asm fb text = emit fb (Asm text)

(* Integer constants. *)
let i8 v = Int (Int64.of_int v, Ty.I8)
let i16 v = Int (Int64.of_int v, Ty.I16)
let i32 v = Int (Int64.of_int v, Ty.I32)
let i64 v = Int (Int64.of_int v, Ty.I64)
let i64' v = Int (v, Ty.I64)
let f32 v = Float (v, Ty.F32)
let f64 v = Float (v, Ty.F64)

(* {1 Structured control flow} *)

let ret fb op = seal fb (Ret op)
let ret_void fb = seal fb (Ret None)
let br fb label = seal fb (Br label)
let cbr fb cond t e = seal fb (Cbr (cond, t, e))
let switch fb v cases default = seal fb (Switch (v, cases, default))
let unreachable fb = seal fb Unreachable

let if_ fb cond ~then_ ?else_ () =
  let lt = fresh_label fb "if.then"
  and le = fresh_label fb "if.else"
  and lend = fresh_label fb "if.end" in
  (match else_ with
  | Some _ -> cbr fb cond lt le
  | None -> cbr fb cond lt lend);
  open_block fb lt;
  then_ ();
  if fb.in_block then br fb lend;
  (match else_ with
  | Some else_body ->
    open_block fb le;
    else_body ();
    if fb.in_block then br fb lend
  | None -> ());
  open_block fb lend

(* [while_ fb ~name cond body]: [cond] is re-emitted in the header
   block on every iteration, so it may contain instructions. *)
let while_ fb ~name ~cond ~body () =
  let lh = name ^ ".cond"
  and lb = name ^ ".body"
  and lend = name ^ ".end" in
  br fb lh;
  open_block fb lh;
  let c = cond () in
  cbr fb c lb lend;
  open_block fb lb;
  body ();
  if fb.in_block then br fb lh;
  open_block fb lend

(* Counted loop over a register induction variable: name.cond is the
   loop header, the body receives the induction value. *)
let for_ fb ~name ~from ~below ?(step = i64 1) body =
  let iv = fresh_reg fb in
  emit fb (Assign (iv, Bin (Add, from, i64 0)));
  let lh = name ^ ".cond"
  and lb = name ^ ".body"
  and lend = name ^ ".end" in
  br fb lh;
  open_block fb lh;
  let c = cmp fb Slt (Reg iv) below in
  cbr fb c lb lend;
  open_block fb lb;
  body (Reg iv);
  if fb.in_block then begin
    emit fb (Assign (iv, Bin (Add, Reg iv, step)));
    br fb lh
  end;
  open_block fb lend

let func t name ~params ~ret:fn_ret build =
  List.iter
    (fun ty ->
      if not (Ty.is_scalar ty) then
        invalid_arg
          (Printf.sprintf
             "Builder.func %s: parameters must be scalar (got %s)" name
             (Ty.to_string ty)))
    params;
  let fn_params = List.mapi (fun i ty -> (i, ty)) params in
  let fb =
    { parent = t; fn_name = name; fn_params; fn_ret;
      nreg = List.length params; done_blocks = []; cur_label = "entry";
      cur_instrs = []; in_block = true; label_counter = 0 }
  in
  build fb (List.map (fun (r, _) -> Reg r) fn_params);
  if fb.in_block then
    (match fn_ret with
    | Ty.Void -> ret_void fb
    | _ ->
      invalid_arg
        (Printf.sprintf "Builder.func %s: missing return" name));
  let f =
    {
      f_name = name;
      f_params = fn_params;
      f_ret = fn_ret;
      f_blocks = List.rev fb.done_blocks;
      f_nregs = fb.nreg;
    }
  in
  t.mb_funcs <- f :: t.mb_funcs;
  f

(* {1 Infix operators}

   [let ops fb] produces a first-class module of operators bound to
   [fb], so kernels read like arithmetic:
   {[ let module O = (val Builder.ops fb) in O.(a +! b *! c) ]} *)

module type OPS = sig
  val ( +! ) : operand -> operand -> operand
  val ( -! ) : operand -> operand -> operand
  val ( *! ) : operand -> operand -> operand
  val ( /! ) : operand -> operand -> operand
  val ( %! ) : operand -> operand -> operand
  val ( +. ) : operand -> operand -> operand
  val ( -. ) : operand -> operand -> operand
  val ( *. ) : operand -> operand -> operand
  val ( /. ) : operand -> operand -> operand
  val ( <! ) : operand -> operand -> operand
  val ( <=! ) : operand -> operand -> operand
  val ( >! ) : operand -> operand -> operand
  val ( >=! ) : operand -> operand -> operand
  val ( =! ) : operand -> operand -> operand
  val ( <>! ) : operand -> operand -> operand
  val ( <. ) : operand -> operand -> operand
  val ( >. ) : operand -> operand -> operand
end

let ops fb : (module OPS) =
  (module struct
    let ( +! ) a b = iadd fb a b
    let ( -! ) a b = isub fb a b
    let ( *! ) a b = imul fb a b
    let ( /! ) a b = idiv fb a b
    let ( %! ) a b = irem fb a b
    let ( +. ) a b = fadd fb a b
    let ( -. ) a b = fsub fb a b
    let ( *. ) a b = fmul fb a b
    let ( /. ) a b = fdiv fb a b
    let ( <! ) a b = cmp fb Slt a b
    let ( <=! ) a b = cmp fb Sle a b
    let ( >! ) a b = cmp fb Sgt a b
    let ( >=! ) a b = cmp fb Sge a b
    let ( =! ) a b = cmp fb Eq a b
    let ( <>! ) a b = cmp fb Ne a b
    let ( <. ) a b = cmp fb Flt a b
    let ( >. ) a b = cmp fb Fgt a b
  end)
