(* Well-known external functions of the IR and their classification.

   The function filter of the paper (Section 3.1) decides whether a call
   makes a task machine specific.  It distinguishes: allocation calls
   (rewritten to UVA allocation by Section 3.2), output I/O calls
   (replaceable with remote I/O, Section 3.4), file I/O (remotable with
   prefetching), interactive input (never offloadable), pure math and
   memory helpers (machine independent), system calls and unknown
   externals (machine specific). *)

type kind =
  | Alloc            (* malloc *)
  | Dealloc          (* free *)
  | Uva_alloc        (* u_malloc: already unified *)
  | Uva_dealloc      (* u_free *)
  | Output_io        (* print_*: replaceable with r_print_* *)
  | Input_io         (* scan_*: interactive, machine specific *)
  | File_io          (* f_*: remotable with prefetch *)
  | Remote_io        (* r_print_* / rf_*: already remote *)
  | Pure             (* math functions *)
  | Memory           (* memcpy / memset: machine independent *)
  | Syscall          (* machine specific *)
  | Unknown          (* unknown external: machine specific *)

let i8p = Ty.Ptr Ty.I8

let table : (string * kind * Ty.signature) list =
  [
    ("malloc", Alloc, Ty.signature [ Ty.I64 ] i8p);
    ("free", Dealloc, Ty.signature [ i8p ] Ty.Void);
    ("u_malloc", Uva_alloc, Ty.signature [ Ty.I64 ] i8p);
    ("u_free", Uva_dealloc, Ty.signature [ i8p ] Ty.Void);
    ("print_i64", Output_io, Ty.signature [ Ty.I64 ] Ty.Void);
    ("print_f64", Output_io, Ty.signature [ Ty.F64 ] Ty.Void);
    ("print_str", Output_io, Ty.signature [ i8p ] Ty.Void);
    ("print_newline", Output_io, Ty.signature [] Ty.Void);
    ("r_print_i64", Remote_io, Ty.signature [ Ty.I64 ] Ty.Void);
    ("r_print_f64", Remote_io, Ty.signature [ Ty.F64 ] Ty.Void);
    ("r_print_str", Remote_io, Ty.signature [ i8p ] Ty.Void);
    ("r_print_newline", Remote_io, Ty.signature [] Ty.Void);
    ("scan_i64", Input_io, Ty.signature [] Ty.I64);
    ("scan_f64", Input_io, Ty.signature [] Ty.F64);
    ("f_open", File_io, Ty.signature [ i8p ] Ty.I32);
    ("f_size", File_io, Ty.signature [ Ty.I32 ] Ty.I64);
    ("f_read", File_io, Ty.signature [ Ty.I32; i8p; Ty.I64 ] Ty.I64);
    ("f_close", File_io, Ty.signature [ Ty.I32 ] Ty.Void);
    ("rf_open", Remote_io, Ty.signature [ i8p ] Ty.I32);
    ("rf_size", Remote_io, Ty.signature [ Ty.I32 ] Ty.I64);
    ("rf_read", Remote_io, Ty.signature [ Ty.I32; i8p; Ty.I64 ] Ty.I64);
    ("rf_close", Remote_io, Ty.signature [ Ty.I32 ] Ty.Void);
    ("sqrt", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("sin", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("cos", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("exp", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("log", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("fabs", Pure, Ty.signature [ Ty.F64 ] Ty.F64);
    ("pow", Pure, Ty.signature [ Ty.F64; Ty.F64 ] Ty.F64);
    ("memcpy", Memory, Ty.signature [ i8p; i8p; Ty.I64 ] Ty.Void);
    ("memset", Memory, Ty.signature [ i8p; Ty.I64; Ty.I64 ] Ty.Void);
    ("syscall", Syscall, Ty.signature [ Ty.I64; Ty.I64 ] Ty.I64);
  ]

let kind_of name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) table with
  | Some (_, kind, _) -> kind
  | None -> Unknown

let signature_of name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) table with
  | Some (_, _, sg) -> Some sg
  | None -> None

let is_builtin name = signature_of name <> None

(* Remote counterpart of an output/file I/O builtin (Section 3.4). *)
let remote_counterpart name =
  match name with
  | "print_i64" -> Some "r_print_i64"
  | "print_f64" -> Some "r_print_f64"
  | "print_str" -> Some "r_print_str"
  | "print_newline" -> Some "r_print_newline"
  | "f_open" -> Some "rf_open"
  | "f_size" -> Some "rf_size"
  | "f_read" -> Some "rf_read"
  | "f_close" -> Some "rf_close"
  | _ -> None

(* Is a call to [name] machine specific in the sense of the function
   filter?  Output and file I/O are *not* machine specific because they
   can be rewritten to remote I/O; interactive input, syscalls and
   unknown externals are. *)
let is_machine_specific name =
  match kind_of name with
  | Input_io | Syscall | Unknown -> true
  | Alloc | Dealloc | Uva_alloc | Uva_dealloc | Output_io | File_io
  | Remote_io | Pure | Memory -> false

let kind_to_string = function
  | Alloc -> "alloc"
  | Dealloc -> "dealloc"
  | Uva_alloc -> "uva-alloc"
  | Uva_dealloc -> "uva-dealloc"
  | Output_io -> "output-io"
  | Input_io -> "input-io"
  | File_io -> "file-io"
  | Remote_io -> "remote-io"
  | Pure -> "pure"
  | Memory -> "memory"
  | Syscall -> "syscall"
  | Unknown -> "unknown"
