(* Human-readable rendering of IR modules, used by the CLI's dump
   command and by golden tests on the transformation passes. *)

open Ir

let pp_operand ppf op =
  match op with
  | Reg r -> Fmt.pf ppf "%%r%d" r
  | Int (v, ty) -> Fmt.pf ppf "%Ld:%a" v Ty.pp ty
  | Float (v, ty) -> Fmt.pf ppf "%g:%a" v Ty.pp ty
  | Null ty -> Fmt.pf ppf "null:%a" Ty.pp ty
  | Global name -> Fmt.pf ppf "@%s" name
  | Fn_addr name -> Fmt.pf ppf "&%s" name

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle"
  | Fgt -> "fgt" | Fge -> "fge"

let castop_name = function
  | Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc"
  | Bitcast -> "bitcast" | Fp_to_si -> "fptosi" | Si_to_fp -> "sitofp"
  | Fp_ext -> "fpext" | Fp_trunc -> "fptrunc"
  | Ptr_to_int -> "ptrtoint" | Int_to_ptr -> "inttoptr"

let pp_gep_index ppf = function
  | Field name -> Fmt.pf ppf ".%s" name
  | Index op -> Fmt.pf ppf "[%a]" pp_operand op

let pp_rvalue ppf rv =
  match rv with
  | Bin (op, a, b) ->
    Fmt.pf ppf "%s %a, %a" (binop_name op) pp_operand a pp_operand b
  | Cmp (op, a, b) ->
    Fmt.pf ppf "cmp %s %a, %a" (cmpop_name op) pp_operand a pp_operand b
  | Cast (op, src, a, ty) ->
    Fmt.pf ppf "%s %a %a to %a" (castop_name op) Ty.pp src pp_operand a Ty.pp
      ty
  | Select (c, a, b) ->
    Fmt.pf ppf "select %a, %a, %a" pp_operand c pp_operand a pp_operand b
  | Load (ty, a) -> Fmt.pf ppf "load %a, %a" Ty.pp ty pp_operand a
  | Alloca (ty, n) -> Fmt.pf ppf "alloca %a x %d" Ty.pp ty n
  | Gep (ty, base, path) ->
    Fmt.pf ppf "gep %a, %a%a" Ty.pp ty pp_operand base
      Fmt.(list ~sep:nop pp_gep_index) path
  | Call (name, args) ->
    Fmt.pf ppf "call %s(%a)" name Fmt.(list ~sep:(any ", ") pp_operand) args
  | Call_ind (sg, f, args) ->
    Fmt.pf ppf "call.ind %a %a(%a)" Ty.pp (Ty.Fn_ptr sg) pp_operand f
      Fmt.(list ~sep:(any ", ") pp_operand) args
  | Bswap (ty, a) -> Fmt.pf ppf "bswap %a %a" Ty.pp ty pp_operand a
  | Fn_map (Mobile_to_server, a) -> Fmt.pf ppf "m2sFcnMap %a" pp_operand a
  | Fn_map (Server_to_mobile, a) -> Fmt.pf ppf "s2mFcnMap %a" pp_operand a

let pp_instr ppf instr =
  match instr with
  | Assign (r, rv) -> Fmt.pf ppf "%%r%d = %a" r pp_rvalue rv
  | Effect rv -> pp_rvalue ppf rv
  | Store (ty, v, a) ->
    Fmt.pf ppf "store %a %a, %a" Ty.pp ty pp_operand v pp_operand a
  | Asm text -> Fmt.pf ppf "asm %S" text

let pp_terminator ppf term =
  match term with
  | Br l -> Fmt.pf ppf "br %s" l
  | Cbr (c, t, e) -> Fmt.pf ppf "cbr %a, %s, %s" pp_operand c t e
  | Switch (v, cases, default) ->
    let pp_case ppf (value, label) = Fmt.pf ppf "%Ld -> %s" value label in
    Fmt.pf ppf "switch %a [%a] default %s" pp_operand v
      Fmt.(list ~sep:(any "; ") pp_case) cases default
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some op) -> Fmt.pf ppf "ret %a" pp_operand op
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_block ppf b =
  Fmt.pf ppf "@[<v 2>%s:@,%a%a@]" b.label
    Fmt.(list ~sep:nop (fun ppf i -> Fmt.pf ppf "%a@," pp_instr i))
    b.instrs pp_terminator b.term

let pp_func ppf f =
  let pp_param ppf (r, ty) = Fmt.pf ppf "%%r%d:%a" r Ty.pp ty in
  Fmt.pf ppf "@[<v 2>fn %s(%a) -> %a {@,%a@]@,}" f.f_name
    Fmt.(list ~sep:(any ", ") pp_param)
    f.f_params Ty.pp f.f_ret
    Fmt.(list ~sep:cut pp_block)
    f.f_blocks

let rec pp_const_init ppf init =
  match init with
  | Zero_init -> Fmt.string ppf "zero"
  | Int_init (v, ty) -> Fmt.pf ppf "%Ld:%a" v Ty.pp ty
  | Float_init (v, ty) -> Fmt.pf ppf "%g:%a" v Ty.pp ty
  | Fn_init name -> Fmt.pf ppf "&%s" name
  | Array_init items | Struct_init items ->
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_const_init) items
  | String_init s -> Fmt.pf ppf "%S" s

let pp_global ppf g =
  Fmt.pf ppf "global @%s : %a = %a" g.g_name Ty.pp g.g_ty pp_const_init g.g_init

let pp_struct ppf s =
  let pp_field ppf (name, ty) = Fmt.pf ppf "%s: %a" name Ty.pp ty in
  Fmt.pf ppf "struct %%%s { %a }" s.s_name
    Fmt.(list ~sep:(any "; ") pp_field)
    s.s_fields

let pp_modul ppf m =
  Fmt.pf ppf "@[<v>module %s@,%a@,%a@,%a@]" m.m_name
    Fmt.(list ~sep:cut pp_struct)
    m.m_structs
    Fmt.(list ~sep:cut pp_global)
    m.m_globals
    Fmt.(list ~sep:cut pp_func)
    m.m_funcs

let modul_to_string m = Fmt.str "%a" pp_modul m
let func_to_string f = Fmt.str "%a" pp_func f
let instr_to_string i = Fmt.str "%a" pp_instr i
