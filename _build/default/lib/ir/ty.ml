(* Types of the Native Offloader IR.

   The IR is typed the way LLVM IR is typed: fixed-width integers,
   IEEE floats, pointers, named structures and fixed-size arrays.
   Pointer width is *not* part of the type: it is an architecture
   property, which is exactly what the address-size conversion pass of
   the paper (Section 3.2) manipulates. *)

type t =
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Ptr of t
  | Fn_ptr of signature
  | Struct of string
  | Array of t * int
  | Void

and signature = {
  args : t list;
  ret : t;
}

let signature args ret = { args; ret }

let is_integer = function
  | I8 | I16 | I32 | I64 -> true
  | F32 | F64 | Ptr _ | Fn_ptr _ | Struct _ | Array _ | Void -> false

let is_float = function
  | F32 | F64 -> true
  | I8 | I16 | I32 | I64 | Ptr _ | Fn_ptr _ | Struct _ | Array _ | Void -> false

let is_pointer = function
  | Ptr _ | Fn_ptr _ -> true
  | I8 | I16 | I32 | I64 | F32 | F64 | Struct _ | Array _ | Void -> false

let is_scalar ty = is_integer ty || is_float ty || is_pointer ty

(* Width in bits of integer and float types.  Pointers have no
   architecture-independent width; see {!No_arch.Layout}. *)
let scalar_bits = function
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | F32 -> 32
  | F64 -> 64
  | Ptr _ | Fn_ptr _ | Struct _ | Array _ | Void ->
    invalid_arg "Ty.scalar_bits: not a fixed-width scalar"

let rec pp ppf ty =
  match ty with
  | I8 -> Fmt.string ppf "i8"
  | I16 -> Fmt.string ppf "i16"
  | I32 -> Fmt.string ppf "i32"
  | I64 -> Fmt.string ppf "i64"
  | F32 -> Fmt.string ppf "f32"
  | F64 -> Fmt.string ppf "f64"
  | Ptr ty -> Fmt.pf ppf "%a*" pp ty
  | Fn_ptr { args; ret } ->
    Fmt.pf ppf "%a(%a)*" pp ret Fmt.(list ~sep:(any ", ") pp) args
  | Struct name -> Fmt.pf ppf "%%%s" name
  | Array (ty, n) -> Fmt.pf ppf "[%d x %a]" n pp ty
  | Void -> Fmt.string ppf "void"

let to_string ty = Fmt.str "%a" pp ty

let rec equal a b =
  match a, b with
  | I8, I8 | I16, I16 | I32, I32 | I64, I64 | F32, F32 | F64, F64 | Void, Void
    -> true
  | Ptr a, Ptr b -> equal a b
  | Fn_ptr a, Fn_ptr b -> equal_signature a b
  | Struct a, Struct b -> String.equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | (I8 | I16 | I32 | I64 | F32 | F64 | Ptr _ | Fn_ptr _
    | Struct _ | Array _ | Void), _ -> false

and equal_signature a b =
  equal a.ret b.ret
  && List.length a.args = List.length b.args
  && List.for_all2 equal a.args b.args
