(* Core data structures of the Native Offloader IR.

   The IR is a register-based, basic-block representation, close in
   spirit to LLVM IR.  A program is a {!modul}: named struct types,
   global variables with constant initializers, and functions.  A
   function is a list of basic blocks; the first block is the entry.
   Virtual registers are function-local and numbered densely from 0.

   Memory-unification passes of the paper (Section 3.2) rewrite these
   structures: GEPs are lowered to byte arithmetic against a unified
   layout, loads/stores gain byte-swaps under endianness translation,
   and pointer loads gain zero-extensions under address-size
   conversion. *)

type reg = int

type operand =
  | Reg of reg
  | Int of int64 * Ty.t        (* integer constant of an integer type *)
  | Float of float * Ty.t      (* float constant of F32/F64 *)
  | Null of Ty.t               (* null pointer of a pointer type *)
  | Global of string           (* address of a global variable *)
  | Fn_addr of string          (* address of a function *)

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type cmpop =
  | Eq | Ne
  | Slt | Sle | Sgt | Sge       (* signed integer / pointer compares *)
  | Ult | Ule | Ugt | Uge
  | Feq | Fne | Flt | Fle | Fgt | Fge

type castop =
  | Zext                        (* zero-extend integer *)
  | Sext                        (* sign-extend integer *)
  | Trunc                       (* truncate integer *)
  | Bitcast                     (* reinterpret pointer types *)
  | Fp_to_si
  | Si_to_fp
  | Fp_ext                      (* f32 -> f64 *)
  | Fp_trunc                    (* f64 -> f32 *)
  | Ptr_to_int
  | Int_to_ptr

type gep_index =
  | Field of string             (* struct field by name *)
  | Index of operand            (* array element *)

(* Direction of a function-pointer translation (Section 3.4): mobile
   address to server address or back. *)
type fn_map_dir =
  | Mobile_to_server
  | Server_to_mobile

type rvalue =
  | Bin of binop * operand * operand
  | Cmp of cmpop * operand * operand
  | Cast of castop * Ty.t * operand * Ty.t   (* op, source ty, value, dest ty *)
  | Select of operand * operand * operand
  | Load of Ty.t * operand
  | Alloca of Ty.t * int        (* stack allocation of [n] elements *)
  | Gep of Ty.t * operand * gep_index list
      (* address of a sub-object: pointee type, base address, path.
         Lowered to byte arithmetic by the layout pass. *)
  | Call of string * operand list
  | Call_ind of Ty.signature * operand * operand list
  | Bswap of Ty.t * operand     (* inserted by endianness translation *)
  | Fn_map of fn_map_dir * operand
      (* inserted by function-pointer mapping *)

type instr =
  | Assign of reg * rvalue
  | Effect of rvalue            (* rvalue evaluated for side effects *)
  | Store of Ty.t * operand * operand   (* ty, value, address *)
  | Asm of string               (* inline assembly: machine specific *)

type terminator =
  | Br of string
  | Cbr of operand * string * string
  | Switch of operand * (int64 * string) list * string
  | Ret of operand option
  | Unreachable

type block = {
  label : string;
  instrs : instr list;
  term : terminator;
}

(* Constant initializers for globals. *)
type const_init =
  | Zero_init
  | Int_init of int64 * Ty.t
  | Float_init of float * Ty.t
  | Fn_init of string                  (* function address *)
  | Array_init of const_init list
  | Struct_init of const_init list
  | String_init of string              (* i8 array contents, NUL added *)

type global = {
  g_name : string;
  g_ty : Ty.t;
  g_init : const_init;
}

type func = {
  f_name : string;
  f_params : (reg * Ty.t) list;
  f_ret : Ty.t;
  f_blocks : block list;               (* entry block first *)
  f_nregs : int;                       (* registers are 0 .. f_nregs-1 *)
}

type struct_def = {
  s_name : string;
  s_fields : (string * Ty.t) list;
}

type modul = {
  m_name : string;
  m_structs : struct_def list;
  m_globals : global list;
  m_funcs : func list;
  m_externs : (string * Ty.signature) list;
      (* runtime-provided entry points the partitioner introduces,
         e.g. __offload$f and __uva_init_global$g *)
  m_uva_globals : global list;
      (* globals moved to the UVA heap by the referenced-global
         reallocation pass, with their original initializers; the
         runtime materializes them via __uva_init_global$g *)
}

(* {1 Accessors} *)

let find_func m name = List.find_opt (fun f -> String.equal f.f_name name) m.m_funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.find_func_exn: no function %S" name)

let find_struct m name =
  List.find_opt (fun s -> String.equal s.s_name name) m.m_structs

let find_struct_exn m name =
  match find_struct m name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ir.find_struct_exn: no struct %S" name)

let find_global m name =
  List.find_opt (fun g -> String.equal g.g_name name) m.m_globals

let find_block f label =
  List.find_opt (fun b -> String.equal b.label label) f.f_blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "Ir.find_block_exn: no block %S in %S" label f.f_name)

let entry_block f =
  match f.f_blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Ir.entry_block: %S has no blocks" f.f_name)

let successors term =
  match term with
  | Br l -> [ l ]
  | Cbr (_, t, e) -> [ t; e ]
  | Switch (_, cases, default) -> List.map snd cases @ [ default ]
  | Ret _ | Unreachable -> []

(* {1 Traversals used by transformation passes} *)

let operands_of_rvalue rv =
  match rv with
  | Bin (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Cast (_, _, a, _) | Load (_, a) | Bswap (_, a) | Fn_map (_, a) -> [ a ]
  | Select (c, a, b) -> [ c; a; b ]
  | Alloca _ -> []
  | Gep (_, base, path) ->
    base
    :: List.filter_map
         (function Field _ -> None | Index op -> Some op)
         path
  | Call (_, args) -> args
  | Call_ind (_, f, args) -> f :: args

let operands_of_instr instr =
  match instr with
  | Assign (_, rv) | Effect rv -> operands_of_rvalue rv
  | Store (_, v, a) -> [ v; a ]
  | Asm _ -> []

(* Rebuild a function with every instruction list rewritten.  The
   rewriter may expand one instruction into several; this is how the
   unification passes insert translation code around memory accesses. *)
let map_instrs (rewrite : instr -> instr list) (f : func) : func =
  let map_block b = { b with instrs = List.concat_map rewrite b.instrs } in
  { f with f_blocks = List.map map_block f.f_blocks }

let map_module_instrs rewrite (m : modul) : modul =
  { m with m_funcs = List.map (map_instrs rewrite) m.m_funcs }

(* Fold over every instruction of a function. *)
let fold_instrs fn acc (f : func) =
  List.fold_left
    (fun acc b -> List.fold_left fn acc b.instrs)
    acc f.f_blocks

(* Every callee name appearing in direct calls of [f]. *)
let direct_callees (f : func) =
  fold_instrs
    (fun acc instr ->
      match instr with
      | Assign (_, Call (name, _)) | Effect (Call (name, _)) -> name :: acc
      | Assign (_, _) | Effect _ | Store _ | Asm _ -> acc)
    [] f
  |> List.sort_uniq String.compare

(* Does [f] contain an indirect call? *)
let has_indirect_call (f : func) =
  fold_instrs
    (fun acc instr ->
      acc
      ||
      match instr with
      | Assign (_, Call_ind _) | Effect (Call_ind _) -> true
      | Assign (_, _) | Effect _ | Store _ | Asm _ -> false)
    false f

(* Type of the object denoted by a GEP path starting from a pointee
   type.  [Index] on a non-array type means pointer-style indexing over
   elements of that same type (C's p[i]); [Index] on an array steps into
   the element type; [Field] projects a named struct field. *)
let rec gep_result_ty ~structs (ty : Ty.t) (path : gep_index list) : Ty.t =
  match path with
  | [] -> ty
  | Index _ :: rest -> (
    match ty with
    | Ty.Array (elem, _) -> gep_result_ty ~structs elem rest
    | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 | Ty.F32 | Ty.F64 | Ty.Ptr _
    | Ty.Fn_ptr _ | Ty.Struct _ ->
      (* C-style p[i]: i-th element of type [ty]; only valid as the
         first step, enforced by the validator. *)
      gep_result_ty ~structs ty rest
    | Ty.Void -> invalid_arg "gep_result_ty: indexing void")
  | Field fname :: rest -> (
    match ty with
    | Ty.Struct sname -> (
      let sd : struct_def = structs sname in
      match List.assoc_opt fname sd.s_fields with
      | Some fty -> gep_result_ty ~structs fty rest
      | None ->
        invalid_arg
          (Printf.sprintf "gep_result_ty: no field %s in struct %s" fname
             sname))
    | Ty.I8 | Ty.I16 | Ty.I32 | Ty.I64 | Ty.F32 | Ty.F64 | Ty.Ptr _
    | Ty.Fn_ptr _ | Ty.Array _ | Ty.Void ->
      invalid_arg
        (Printf.sprintf "gep_result_ty: field %s of non-struct" fname))

(* Fresh-register supply when a pass needs scratch registers. *)
type reg_supply = { mutable next : int }

let reg_supply_of_func f = { next = f.f_nregs }
let fresh_reg supply =
  let r = supply.next in
  supply.next <- r + 1;
  r
