(* Well-formedness and type checking of IR modules.

   Registers are not SSA: a register may be assigned several times
   (loop induction variables are), but every assignment must agree on
   one type, determined by the first assignment encountered in block
   order.  The checker verifies branch-target existence, register
   bounds, operand type agreement, call signatures, and that every
   block is properly terminated (guaranteed by construction via
   {!Builder}, re-checked here for hand-built or transformed IR). *)

open Ir

exception Ill_typed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_typed s)) fmt

type ctx = {
  m : modul;
  f : func;
  reg_ty : Ty.t option array;
}

let structs_fn m name = find_struct_exn m name

let global_ty ctx name =
  match find_global ctx.m name with
  | Some g -> Ty.Ptr g.g_ty
  | None -> fail "%s: unknown global @%s" ctx.f.f_name name

let func_sig ctx name =
  match find_func ctx.m name with
  | Some f -> Ty.signature (List.map snd f.f_params) f.f_ret
  | None -> (
    match Builtins.signature_of name with
    | Some sg -> sg
    | None -> (
      match List.assoc_opt name ctx.m.m_externs with
      | Some sg -> sg
      | None ->
        (* Unknown external: callable, machine specific.  Treated as
           variadic returning i64. *)
        Ty.signature [] Ty.I64))

let operand_ty ctx op =
  match op with
  | Reg r ->
    if r < 0 || r >= ctx.f.f_nregs then
      fail "%s: register %%r%d out of bounds" ctx.f.f_name r;
    (match ctx.reg_ty.(r) with
    | Some ty -> ty
    | None -> fail "%s: register %%r%d used before assignment" ctx.f.f_name r)
  | Int (_, ty) ->
    if not (Ty.is_integer ty) then
      fail "%s: integer constant of type %s" ctx.f.f_name (Ty.to_string ty);
    ty
  | Float (_, ty) ->
    if not (Ty.is_float ty) then
      fail "%s: float constant of type %s" ctx.f.f_name (Ty.to_string ty);
    ty
  | Null ty ->
    if not (Ty.is_pointer ty) then
      fail "%s: null of non-pointer type %s" ctx.f.f_name (Ty.to_string ty);
    ty
  | Global name -> global_ty ctx name
  | Fn_addr name -> Ty.Fn_ptr (func_sig ctx name)

let check_same ctx what a b =
  if not (Ty.equal a b) then
    fail "%s: %s: type mismatch %s vs %s" ctx.f.f_name what (Ty.to_string a)
      (Ty.to_string b)

let rvalue_ty ctx rv : Ty.t =
  match rv with
  | Bin (op, a, b) -> (
    let ta = operand_ty ctx a and tb = operand_ty ctx b in
    check_same ctx "binop" ta tb;
    match op with
    | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem | And | Or | Xor | Shl
    | Lshr | Ashr ->
      if not (Ty.is_integer ta) then
        fail "%s: integer binop on %s" ctx.f.f_name (Ty.to_string ta);
      ta
    | Fadd | Fsub | Fmul | Fdiv ->
      if not (Ty.is_float ta) then
        fail "%s: float binop on %s" ctx.f.f_name (Ty.to_string ta);
      ta)
  | Cmp (op, a, b) -> (
    let ta = operand_ty ctx a and tb = operand_ty ctx b in
    check_same ctx "cmp" ta tb;
    match op with
    | Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge ->
      if not (Ty.is_integer ta || Ty.is_pointer ta) then
        fail "%s: integer compare on %s" ctx.f.f_name (Ty.to_string ta);
      Ty.I8
    | Feq | Fne | Flt | Fle | Fgt | Fge ->
      if not (Ty.is_float ta) then
        fail "%s: float compare on %s" ctx.f.f_name (Ty.to_string ta);
      Ty.I8)
  | Cast (op, src, a, ty) -> (
    let ta = operand_ty ctx a in
    check_same ctx "cast source" ta src;
    let want_int t =
      if not (Ty.is_integer t) then
        fail "%s: cast expects integer, got %s" ctx.f.f_name (Ty.to_string t)
    and want_float t =
      if not (Ty.is_float t) then
        fail "%s: cast expects float, got %s" ctx.f.f_name (Ty.to_string t)
    and want_ptr t =
      if not (Ty.is_pointer t) then
        fail "%s: cast expects pointer, got %s" ctx.f.f_name (Ty.to_string t)
    in
    match op with
    | Zext | Sext ->
      want_int ta;
      want_int ty;
      if Ty.scalar_bits ty < Ty.scalar_bits ta then
        fail "%s: widening cast to narrower type" ctx.f.f_name;
      ty
    | Trunc ->
      want_int ta;
      want_int ty;
      if Ty.scalar_bits ty > Ty.scalar_bits ta then
        fail "%s: trunc to wider type" ctx.f.f_name;
      ty
    | Bitcast -> want_ptr ta; want_ptr ty; ty
    | Fp_to_si -> want_float ta; want_int ty; ty
    | Si_to_fp -> want_int ta; want_float ty; ty
    | Fp_ext | Fp_trunc -> want_float ta; want_float ty; ty
    | Ptr_to_int -> want_ptr ta; want_int ty; ty
    | Int_to_ptr -> want_int ta; want_ptr ty; ty)
  | Select (c, a, b) ->
    let tc = operand_ty ctx c in
    if not (Ty.is_integer tc) then
      fail "%s: select condition must be integer" ctx.f.f_name;
    let ta = operand_ty ctx a and tb = operand_ty ctx b in
    check_same ctx "select" ta tb;
    ta
  | Load (ty, a) ->
    if not (Ty.is_scalar ty) then
      fail "%s: load of non-scalar %s" ctx.f.f_name (Ty.to_string ty);
    check_same ctx "load address" (operand_ty ctx a) (Ty.Ptr ty);
    ty
  | Alloca (ty, n) ->
    if n <= 0 then fail "%s: alloca of %d elements" ctx.f.f_name n;
    Ty.Ptr ty
  | Gep (pointee, base, path) ->
    check_same ctx "gep base" (operand_ty ctx base) (Ty.Ptr pointee);
    List.iter
      (fun idx ->
        match idx with
        | Field _ -> ()
        | Index op ->
          if not (Ty.is_integer (operand_ty ctx op)) then
            fail "%s: gep index must be integer" ctx.f.f_name)
      path;
    Ty.Ptr (gep_result_ty ~structs:(structs_fn ctx.m) pointee path)
  | Call (name, args) ->
    let sg = func_sig ctx name in
    if
      Builtins.signature_of name <> None
      || find_func ctx.m name <> None
      || List.mem_assoc name ctx.m.m_externs
    then begin
      if List.length args <> List.length sg.Ty.args then
        fail "%s: call %s: arity mismatch" ctx.f.f_name name;
      List.iter2
        (fun arg want ->
          let got = operand_ty ctx arg in
          (* i8* parameters accept any pointer (C's void* idiom). *)
          match want with
          | Ty.Ptr Ty.I8 when Ty.is_pointer got -> ()
          | _ -> check_same ctx ("call " ^ name) got want)
        args sg.Ty.args
    end;
    sg.Ty.ret
  | Call_ind (sg, f, args) ->
    let tf = operand_ty ctx f in
    (match tf with
    | Ty.Fn_ptr got -> check_same ctx "indirect callee"
        (Ty.Fn_ptr got) (Ty.Fn_ptr sg)
    | Ty.I64 ->
      (* After address-size conversion an fn pointer may travel as i64;
         allowed only when produced by Fn_map, checked dynamically. *)
      ()
    | _ ->
      fail "%s: indirect call through %s" ctx.f.f_name (Ty.to_string tf));
    if List.length args <> List.length sg.Ty.args then
      fail "%s: indirect call arity mismatch" ctx.f.f_name;
    List.iter2
      (fun arg want ->
        let got = operand_ty ctx arg in
        match want with
        | Ty.Ptr Ty.I8 when Ty.is_pointer got -> ()
        | _ -> check_same ctx "indirect call" got want)
      args sg.Ty.args;
    sg.Ty.ret
  | Bswap (ty, a) ->
    if not (Ty.is_integer ty || Ty.is_float ty) then
      fail "%s: bswap of %s" ctx.f.f_name (Ty.to_string ty);
    check_same ctx "bswap" (operand_ty ctx a) ty;
    ty
  | Fn_map (_, a) ->
    let ta = operand_ty ctx a in
    (match ta with
    | Ty.Fn_ptr _ -> ta
    | _ -> fail "%s: fn_map of %s" ctx.f.f_name (Ty.to_string ta))

let check_instr ctx instr =
  match instr with
  | Assign (r, rv) ->
    if r < 0 || r >= ctx.f.f_nregs then
      fail "%s: assignment to out-of-bounds %%r%d" ctx.f.f_name r;
    let ty = rvalue_ty ctx rv in
    if Ty.equal ty Ty.Void then
      fail "%s: assignment of void to %%r%d" ctx.f.f_name r;
    (match ctx.reg_ty.(r) with
    | None -> ctx.reg_ty.(r) <- Some ty
    | Some prev -> check_same ctx (Printf.sprintf "register %%r%d" r) prev ty)
  | Effect rv -> ignore (rvalue_ty ctx rv)
  | Store (ty, v, a) ->
    if not (Ty.is_scalar ty) then
      fail "%s: store of non-scalar %s" ctx.f.f_name (Ty.to_string ty);
    check_same ctx "store value" (operand_ty ctx v) ty;
    check_same ctx "store address" (operand_ty ctx a) (Ty.Ptr ty)
  | Asm _ -> ()

let check_terminator ctx labels term =
  let check_label l =
    if not (List.mem l labels) then
      fail "%s: branch to unknown block %s" ctx.f.f_name l
  in
  match term with
  | Br l -> check_label l
  | Cbr (c, t, e) ->
    if not (Ty.is_integer (operand_ty ctx c)) then
      fail "%s: cbr condition must be integer" ctx.f.f_name;
    check_label t;
    check_label e
  | Switch (v, cases, default) ->
    if not (Ty.is_integer (operand_ty ctx v)) then
      fail "%s: switch value must be integer" ctx.f.f_name;
    List.iter (fun (_, l) -> check_label l) cases;
    check_label default
  | Ret None ->
    if not (Ty.equal ctx.f.f_ret Ty.Void) then
      fail "%s: ret without value in non-void function" ctx.f.f_name
  | Ret (Some op) ->
    check_same ctx "return" (operand_ty ctx op) ctx.f.f_ret
  | Unreachable -> ()

(* Two passes over the blocks: the first pass collects register types
   (a register may be read in a block that precedes its defining block
   in layout order, e.g. a loop header reading the induction variable
   incremented in the body), the second re-checks everything. *)
let check_func m (f : func) =
  if f.f_blocks = [] then fail "%s: no blocks" f.f_name;
  let labels = List.map (fun b -> b.label) f.f_blocks in
  let distinct = List.sort_uniq String.compare labels in
  if List.length distinct <> List.length labels then
    fail "%s: duplicate block labels" f.f_name;
  let ctx = { m; f; reg_ty = Array.make (max f.f_nregs 1) None } in
  List.iter (fun (r, ty) -> ctx.reg_ty.(r) <- Some ty) f.f_params;
  let collect_pass () =
    List.iter
      (fun b ->
        List.iter
          (fun instr ->
            match instr with
            | Assign (r, rv) -> (
              match ctx.reg_ty.(r) with
              | Some _ -> ()
              | None -> (
                match rvalue_ty ctx rv with
                | ty -> ctx.reg_ty.(r) <- Some ty
                | exception Ill_typed _ -> ()))
            | Effect _ | Store _ | Asm _ -> ())
          b.instrs)
      f.f_blocks
  in
  collect_pass ();
  collect_pass ();
  List.iter
    (fun b ->
      List.iter (check_instr ctx) b.instrs;
      check_terminator ctx labels b.term)
    f.f_blocks

let rec check_init m (ty : Ty.t) (init : const_init) =
  match init, ty with
  | Zero_init, _ -> ()
  | Int_init (_, ity), _ ->
    if not (Ty.equal ity ty) then
      fail "global initializer: %s vs %s" (Ty.to_string ity) (Ty.to_string ty)
  | Float_init (_, fty), _ ->
    if not (Ty.equal fty ty) then
      fail "global initializer: %s vs %s" (Ty.to_string fty) (Ty.to_string ty)
  | Fn_init name, Ty.Fn_ptr _ ->
    if find_func m name = None then
      fail "global initializer: unknown function %s" name
  | Fn_init _, _ -> fail "global initializer: fn address for non-fn-ptr"
  | Array_init items, Ty.Array (elem, n) ->
    if List.length items <> n then fail "global initializer: array arity";
    List.iter (check_init m elem) items
  | Array_init _, _ -> fail "global initializer: array for non-array"
  | Struct_init items, Ty.Struct sname ->
    let sd = find_struct_exn m sname in
    if List.length items <> List.length sd.s_fields then
      fail "global initializer: struct arity for %s" sname;
    List.iter2 (fun item (_, fty) -> check_init m fty item) items sd.s_fields
  | Struct_init _, _ -> fail "global initializer: struct for non-struct"
  | String_init s, Ty.Array (Ty.I8, n) ->
    if String.length s + 1 <> n then
      fail "global initializer: string length %d in [%d x i8]"
        (String.length s) n
  | String_init _, _ -> fail "global initializer: string for non-i8-array"

let check_module (m : modul) =
  List.iter
    (fun (g : global) ->
      check_init m g.g_ty g.g_init)
    m.m_globals;
  let names = List.map (fun f -> f.f_name) m.m_funcs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then fail "duplicate function names";
  List.iter (check_func m) m.m_funcs

(* Result-typed wrapper for callers that prefer not to catch. *)
let check_module_result m =
  match check_module m with
  | () -> Ok ()
  | exception Ill_typed msg -> Error msg

(* {1 Type inference for transformation passes}

   Passes that rewrite instructions need the static type of operands
   (e.g. the GEP-lowering pass must widen an i32 index).  This reuses
   the checker's two collection passes without the full validation. *)

let reg_types (m : modul) (f : func) : Ty.t option array =
  let ctx = { m; f; reg_ty = Array.make (max f.f_nregs 1) None } in
  List.iter (fun (r, ty) -> ctx.reg_ty.(r) <- Some ty) f.f_params;
  let collect () =
    List.iter
      (fun b ->
        List.iter
          (fun instr ->
            match instr with
            | Assign (r, rv) -> (
              match ctx.reg_ty.(r) with
              | Some _ -> ()
              | None -> (
                match rvalue_ty ctx rv with
                | ty -> ctx.reg_ty.(r) <- Some ty
                | exception Ill_typed _ -> ()))
            | Effect _ | Store _ | Asm _ -> ())
          b.instrs)
      f.f_blocks
  in
  collect ();
  collect ();
  ctx.reg_ty

(* Static type of an operand given inferred register types. *)
let operand_ty_with (m : modul) (f : func) (reg_ty : Ty.t option array)
    (op : operand) : Ty.t =
  let ctx = { m; f; reg_ty } in
  operand_ty ctx op
