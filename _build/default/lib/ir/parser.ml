(* Parser for the textual IR syntax produced by {!Pretty}.

   Round-trips with the pretty-printer: [parse (Pretty.modul_to_string
   m)] reconstructs [m] up to formatting.  Useful for golden tests on
   transformation passes, for hand-writing small test inputs, and for
   the CLI's dump/load workflow.

   Grammar (one construct per line, '#' comments allowed):

     module NAME
     struct %Name { field: ty; ... }
     global @name : ty = init
     fn name(%rN:ty, ...) -> ty {
     label:
       %rN = <rvalue>
       <rvalue>
       store ty <operand>, <operand>
       asm "text"
       <terminator>
     }

   Types:     i8 i16 i32 i64 f32 f64 void %Struct [N x ty] ty* ret(args)*
   Operands:  %rN, 42:i64, 3.5:f64, null:ty, @global, &fn               *)

exception Parse_error of int * string   (* line number, message *)

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* {1 Lexing helpers} *)

type cursor = {
  text : string;
  mutable pos : int;
  line : int;
}

let make_cursor line text = { text; pos = 0; line }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && (c.text.[c.pos] = ' ' || c.text.[c.pos] = '\t')
  do
    c.pos <- c.pos + 1
  done

let eof c =
  skip_ws c;
  c.pos >= String.length c.text

let expect c prefix =
  skip_ws c;
  let n = String.length prefix in
  if
    c.pos + n <= String.length c.text
    && String.equal (String.sub c.text c.pos n) prefix
  then c.pos <- c.pos + n
  else fail c.line "expected %S at %S" prefix
      (String.sub c.text c.pos (min 20 (String.length c.text - c.pos)))

let try_consume c prefix =
  skip_ws c;
  let n = String.length prefix in
  if
    c.pos + n <= String.length c.text
    && String.equal (String.sub c.text c.pos n) prefix
  then begin
    c.pos <- c.pos + n;
    true
  end
  else false

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '.' || ch = '$'

let ident c =
  skip_ws c;
  let start = c.pos in
  while c.pos < String.length c.text && is_ident_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "expected identifier";
  String.sub c.text start (c.pos - start)

(* Digits only: register numbers, array sizes. *)
let digits c =
  skip_ws c;
  let start = c.pos in
  while
    c.pos < String.length c.text
    && (match c.text.[c.pos] with '0' .. '9' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "expected digits";
  String.sub c.text start (c.pos - start)

let number_token c =
  skip_ws c;
  let start = c.pos in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  while
    c.pos < String.length c.text
    &&
    match c.text.[c.pos] with
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' | 'x' | 'a' .. 'd' | 'f'
    | 'A' .. 'F' | 'n' | 'i' -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "expected number";
  String.sub c.text start (c.pos - start)

let quoted_string c =
  skip_ws c;
  expect c "\"";
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.line "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some ('0' .. '9') ->
        (* decimal escape \DDD (what OCaml's %S emits) *)
        let d = ref 0 in
        for _ = 1 to 3 do
          match peek c with
          | Some ('0' .. '9' as ch) ->
            d := (!d * 10) + (Char.code ch - Char.code '0');
            c.pos <- c.pos + 1
          | Some _ | None -> ()
        done;
        Buffer.add_char buf (Char.chr (!d land 0xff));
        (* compensate for the unconditional advance below *)
        c.pos <- c.pos - 1
      | Some other -> Buffer.add_char buf other
      | None -> fail c.line "bad escape");
      c.pos <- c.pos + 1;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

(* {1 Types} *)

let rec parse_ty c : Ty.t =
  skip_ws c;
  let base =
    if try_consume c "i8" then Ty.I8
    else if try_consume c "i16" then Ty.I16
    else if try_consume c "i32" then Ty.I32
    else if try_consume c "i64" then Ty.I64
    else if try_consume c "f32" then Ty.F32
    else if try_consume c "f64" then Ty.F64
    else if try_consume c "void" then Ty.Void
    else if try_consume c "%" then Ty.Struct (ident c)
    else if try_consume c "[" then begin
      let n = int_of_string (digits c) in
      expect c "x";
      let elem = parse_ty c in
      expect c "]";
      Ty.Array (elem, n)
    end
    else fail c.line "expected type"
  in
  (* suffixes: '*' for pointers, '(args)*' for function pointers *)
  let rec suffixes ty =
    skip_ws c;
    if try_consume c "(" then begin
      let args = ref [] in
      if not (try_consume c ")") then begin
        let rec loop () =
          args := parse_ty c :: !args;
          if try_consume c "," then loop () else expect c ")"
        in
        loop ()
      end;
      expect c "*";
      suffixes (Ty.Fn_ptr (Ty.signature (List.rev !args) ty))
    end
    else if try_consume c "*" then suffixes (Ty.Ptr ty)
    else ty
  in
  suffixes base

(* {1 Operands} *)

let parse_operand c : Ir.operand =
  skip_ws c;
  match peek c with
  | Some '%' ->
    expect c "%r";
    Ir.Reg (int_of_string (digits c))
  | Some '@' ->
    expect c "@";
    Ir.Global (ident c)
  | Some '&' ->
    expect c "&";
    Ir.Fn_addr (ident c)
  | Some 'n' ->
    expect c "null:";
    Ir.Null (parse_ty c)
  | Some _ ->
    let tok = number_token c in
    expect c ":";
    let ty = parse_ty c in
    if Ty.is_float ty then Ir.Float (float_of_string tok, ty)
    else Ir.Int (Int64.of_string tok, ty)
  | None -> fail c.line "expected operand"

(* {1 Rvalues and instructions} *)

let binop_of_name = function
  | "add" -> Some Ir.Add | "sub" -> Some Ir.Sub | "mul" -> Some Ir.Mul
  | "sdiv" -> Some Ir.Sdiv | "udiv" -> Some Ir.Udiv
  | "srem" -> Some Ir.Srem | "urem" -> Some Ir.Urem
  | "and" -> Some Ir.And | "or" -> Some Ir.Or | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl | "lshr" -> Some Ir.Lshr | "ashr" -> Some Ir.Ashr
  | "fadd" -> Some Ir.Fadd | "fsub" -> Some Ir.Fsub | "fmul" -> Some Ir.Fmul
  | "fdiv" -> Some Ir.Fdiv
  | _ -> None

let cmpop_of_name = function
  | "eq" -> Some Ir.Eq | "ne" -> Some Ir.Ne
  | "slt" -> Some Ir.Slt | "sle" -> Some Ir.Sle
  | "sgt" -> Some Ir.Sgt | "sge" -> Some Ir.Sge
  | "ult" -> Some Ir.Ult | "ule" -> Some Ir.Ule
  | "ugt" -> Some Ir.Ugt | "uge" -> Some Ir.Uge
  | "feq" -> Some Ir.Feq | "fne" -> Some Ir.Fne
  | "flt" -> Some Ir.Flt | "fle" -> Some Ir.Fle
  | "fgt" -> Some Ir.Fgt | "fge" -> Some Ir.Fge
  | _ -> None

let castop_of_name = function
  | "zext" -> Some Ir.Zext | "sext" -> Some Ir.Sext
  | "trunc" -> Some Ir.Trunc | "bitcast" -> Some Ir.Bitcast
  | "fptosi" -> Some Ir.Fp_to_si | "sitofp" -> Some Ir.Si_to_fp
  | "fpext" -> Some Ir.Fp_ext | "fptrunc" -> Some Ir.Fp_trunc
  | "ptrtoint" -> Some Ir.Ptr_to_int | "inttoptr" -> Some Ir.Int_to_ptr
  | _ -> None

let parse_args c =
  expect c "(";
  let args = ref [] in
  if not (try_consume c ")") then begin
    let rec loop () =
      args := parse_operand c :: !args;
      if try_consume c "," then loop () else expect c ")"
    in
    loop ()
  end;
  List.rev !args

let parse_gep_path c =
  let rec go acc =
    skip_ws c;
    if try_consume c "." then go (Ir.Field (ident c) :: acc)
    else if try_consume c "[" then begin
      let op = parse_operand c in
      expect c "]";
      go (Ir.Index op :: acc)
    end
    else List.rev acc
  in
  go []

let parse_rvalue c : Ir.rvalue =
  skip_ws c;
  let save = c.pos in
  let word = ident c in
  match word with
  | "cmp" ->
    let opname = ident c in
    let op =
      match cmpop_of_name opname with
      | Some op -> op
      | None -> fail c.line "unknown compare %s" opname
    in
    let a = parse_operand c in
    expect c ",";
    let b = parse_operand c in
    Ir.Cmp (op, a, b)
  | "select" ->
    let cond = parse_operand c in
    expect c ",";
    let a = parse_operand c in
    expect c ",";
    let b = parse_operand c in
    Ir.Select (cond, a, b)
  | "load" ->
    let ty = parse_ty c in
    expect c ",";
    Ir.Load (ty, parse_operand c)
  | "alloca" ->
    let ty = parse_ty c in
    expect c "x";
    Ir.Alloca (ty, int_of_string (digits c))
  | "gep" ->
    let ty = parse_ty c in
    expect c ",";
    let base = parse_operand c in
    Ir.Gep (ty, base, parse_gep_path c)
  | "call" ->
    let name = ident c in
    Ir.Call (name, parse_args c)
  | "call.ind" ->
    let fty = parse_ty c in
    let sg =
      match fty with
      | Ty.Fn_ptr sg -> sg
      | _ -> fail c.line "call.ind expects a function-pointer type"
    in
    let f = parse_operand c in
    Ir.Call_ind (sg, f, parse_args c)
  | "bswap" ->
    let ty = parse_ty c in
    Ir.Bswap (ty, parse_operand c)
  | "m2sFcnMap" -> Ir.Fn_map (Ir.Mobile_to_server, parse_operand c)
  | "s2mFcnMap" -> Ir.Fn_map (Ir.Server_to_mobile, parse_operand c)
  | other -> (
    match binop_of_name other with
    | Some op ->
      let a = parse_operand c in
      expect c ",";
      let b = parse_operand c in
      Ir.Bin (op, a, b)
    | None -> (
      match castop_of_name other with
      | Some op ->
        let src = parse_ty c in
        let a = parse_operand c in
        expect c "to";
        let dst = parse_ty c in
        Ir.Cast (op, src, a, dst)
      | None ->
        c.pos <- save;
        fail c.line "unknown rvalue head %s" other))

let parse_instr c : Ir.instr =
  skip_ws c;
  if try_consume c "store" then begin
    let ty = parse_ty c in
    let v = parse_operand c in
    expect c ",";
    let a = parse_operand c in
    Ir.Store (ty, v, a)
  end
  else if try_consume c "asm" then Ir.Asm (quoted_string c)
  else if peek c = Some '%' then begin
    expect c "%r";
    let r = int_of_string (digits c) in
    expect c "=";
    Ir.Assign (r, parse_rvalue c)
  end
  else Ir.Effect (parse_rvalue c)

let parse_terminator c : Ir.terminator option =
  skip_ws c;
  let save = c.pos in
  if try_consume c "br" then Some (Ir.Br (ident c))
  else if try_consume c "cbr" then begin
    let cond = parse_operand c in
    expect c ",";
    let t = ident c in
    expect c ",";
    let e = ident c in
    Some (Ir.Cbr (cond, t, e))
  end
  else if try_consume c "switch" then begin
    let v = parse_operand c in
    expect c "[";
    let cases = ref [] in
    if not (try_consume c "]") then begin
      let rec loop () =
        let value = Int64.of_string (number_token c) in
        expect c "->";
        let label = ident c in
        cases := (value, label) :: !cases;
        if try_consume c ";" then loop () else expect c "]"
      in
      loop ()
    end;
    expect c "default";
    Some (Ir.Switch (v, List.rev !cases, ident c))
  end
  else if try_consume c "ret" then
    if eof c then Some (Ir.Ret None) else Some (Ir.Ret (Some (parse_operand c)))
  else if try_consume c "unreachable" then Some Ir.Unreachable
  else begin
    c.pos <- save;
    None
  end

(* {1 Initializers} *)

let rec parse_init c : Ir.const_init =
  skip_ws c;
  if try_consume c "zero" then Ir.Zero_init
  else if try_consume c "&" then Ir.Fn_init (ident c)
  else if peek c = Some '"' then Ir.String_init (quoted_string c)
  else if try_consume c "{" then begin
    let items = ref [] in
    if not (try_consume c "}") then begin
      let rec loop () =
        items := parse_init c :: !items;
        if try_consume c "," then loop () else expect c "}"
      in
      loop ()
    end;
    Ir.Array_init (List.rev !items)
  end
  else begin
    let tok = number_token c in
    expect c ":";
    let ty = parse_ty c in
    if Ty.is_float ty then Ir.Float_init (float_of_string tok, ty)
    else Ir.Int_init (Int64.of_string tok, ty)
  end

(* {1 Top level} *)

type pstate = {
  mutable p_name : string;
  mutable p_structs : Ir.struct_def list;
  mutable p_globals : Ir.global list;
  mutable p_funcs : Ir.func list;
  (* current function *)
  mutable cur_fn : (string * (Ir.reg * Ty.t) list * Ty.t) option;
  mutable cur_blocks : Ir.block list;
  mutable cur_label : string option;
  mutable cur_instrs : Ir.instr list;
  mutable max_reg : int;
}

let note_regs st (instr : Ir.instr) =
  let note op =
    match op with
    | Ir.Reg r -> if r > st.max_reg then st.max_reg <- r
    | Ir.Int _ | Ir.Float _ | Ir.Null _ | Ir.Global _ | Ir.Fn_addr _ -> ()
  in
  (match instr with
  | Ir.Assign (r, _) -> if r > st.max_reg then st.max_reg <- r
  | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> ());
  List.iter note (Ir.operands_of_instr instr)

let close_block st line term =
  match st.cur_label with
  | None -> fail line "terminator outside a block"
  | Some label ->
    st.cur_blocks <-
      { Ir.label; Ir.instrs = List.rev st.cur_instrs; Ir.term }
      :: st.cur_blocks;
    st.cur_label <- None;
    st.cur_instrs <- []

let close_fn st line =
  match st.cur_fn with
  | None -> fail line "} outside a function"
  | Some (name, params, ret) ->
    if st.cur_label <> None then fail line "unterminated block in %s" name;
    st.p_funcs <-
      {
        Ir.f_name = name;
        Ir.f_params = params;
        Ir.f_ret = ret;
        Ir.f_blocks = List.rev st.cur_blocks;
        Ir.f_nregs = st.max_reg + 1;
      }
      :: st.p_funcs;
    st.cur_fn <- None;
    st.cur_blocks <- []

let parse (text : string) : Ir.modul =
  let st =
    { p_name = "anonymous"; p_structs = []; p_globals = []; p_funcs = [];
      cur_fn = None; cur_blocks = []; cur_label = None; cur_instrs = [];
      max_reg = -1 }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let trimmed = String.trim raw in
      if String.length trimmed = 0 || trimmed.[0] = '#' then ()
      else begin
        let c = make_cursor lineno trimmed in
        if st.cur_fn <> None then begin
          (* inside a function *)
          if try_consume c "}" then close_fn st lineno
          else if
            String.length trimmed > 0
            && trimmed.[String.length trimmed - 1] = ':'
            && not (String.contains trimmed ' ')
          then begin
            if st.cur_label <> None then
              fail lineno "block started before previous terminated";
            st.cur_label <-
              Some (String.sub trimmed 0 (String.length trimmed - 1))
          end
          else
            match parse_terminator c with
            | Some term ->
              List.iter (fun op ->
                  match op with
                  | Ir.Reg r -> if r > st.max_reg then st.max_reg <- r
                  | _ -> ())
                (match term with
                 | Ir.Cbr (op, _, _) | Ir.Switch (op, _, _)
                 | Ir.Ret (Some op) -> [ op ]
                 | Ir.Br _ | Ir.Ret None | Ir.Unreachable -> []);
              close_block st lineno term
            | None ->
              if st.cur_label = None then
                fail lineno "instruction outside a block";
              let instr = parse_instr c in
              note_regs st instr;
              st.cur_instrs <- instr :: st.cur_instrs
        end
        else if try_consume c "module" then st.p_name <- ident c
        else if try_consume c "struct" then begin
          expect c "%";
          let name = ident c in
          expect c "{";
          let fields = ref [] in
          if not (try_consume c "}") then begin
            let rec loop () =
              let fname = ident c in
              expect c ":";
              let fty = parse_ty c in
              fields := (fname, fty) :: !fields;
              if try_consume c ";" then
                (if not (try_consume c "}") then loop ())
              else expect c "}"
            in
            loop ()
          end;
          st.p_structs <-
            { Ir.s_name = name; Ir.s_fields = List.rev !fields }
            :: st.p_structs
        end
        else if try_consume c "global" then begin
          expect c "@";
          let name = ident c in
          expect c ":";
          let ty = parse_ty c in
          expect c "=";
          let init = parse_init c in
          (* struct initializers print identically to arrays; fix up *)
          let init =
            match init, ty with
            | Ir.Array_init items, Ty.Struct _ -> Ir.Struct_init items
            | other, _ -> other
          in
          st.p_globals <-
            { Ir.g_name = name; Ir.g_ty = ty; Ir.g_init = init }
            :: st.p_globals
        end
        else if try_consume c "fn" then begin
          let name = ident c in
          expect c "(";
          let params = ref [] in
          if not (try_consume c ")") then begin
            let rec loop () =
              expect c "%r";
              let r = int_of_string (digits c) in
              expect c ":";
              let ty = parse_ty c in
              params := (r, ty) :: !params;
              if try_consume c "," then loop () else expect c ")"
            in
            loop ()
          end;
          expect c "->";
          let ret = parse_ty c in
          expect c "{";
          st.cur_fn <- Some (name, List.rev !params, ret);
          st.max_reg <-
            List.fold_left (fun acc (r, _) -> max acc r) (-1) !params
        end
        else fail lineno "unrecognized line: %s" trimmed
      end)
    lines;
  if st.cur_fn <> None then fail (List.length lines) "unterminated function";
  {
    Ir.m_name = st.p_name;
    Ir.m_structs = List.rev st.p_structs;
    Ir.m_globals = List.rev st.p_globals;
    Ir.m_funcs = List.rev st.p_funcs;
    Ir.m_externs = [];
    Ir.m_uva_globals = [];
  }
