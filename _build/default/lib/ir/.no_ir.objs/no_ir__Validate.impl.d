lib/ir/validate.ml: Array Builtins Ir List Printf String Ty
