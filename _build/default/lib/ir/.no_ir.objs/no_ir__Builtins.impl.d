lib/ir/builtins.ml: List String Ty
