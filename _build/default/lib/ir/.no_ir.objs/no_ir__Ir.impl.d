lib/ir/ir.ml: List Printf String Ty
