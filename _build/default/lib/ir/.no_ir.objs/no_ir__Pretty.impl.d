lib/ir/pretty.ml: Fmt Ir Ty
