(* Corpus dataset (Tables 2 and 5) and report-rendering tests. *)

module Android_apps = No_corpus.Android_apps
module Related_systems = No_corpus.Related_systems
module Table = No_report.Table

let test_corpus_summary () =
  let s = Android_apps.summarize () in
  Alcotest.(check int) "20 apps" 20 s.Android_apps.total_apps;
  (* "around one third of the 20 applications include native codes
     more than 50% and spend more than 20% of the total execution
     time" *)
  Alcotest.(check int) "majority-native apps" 6
    s.Android_apps.apps_majority_native_loc;
  Alcotest.(check int) "heavy native time" 9
    s.Android_apps.apps_heavy_native_time;
  Alcotest.(check int) "apps with native code" 11
    s.Android_apps.apps_with_native

let test_corpus_ratios () =
  let firefox =
    List.find
      (fun a -> String.equal a.Android_apps.app_name "Firefox")
      Android_apps.apps
  in
  Alcotest.(check (float 0.1)) "firefox ratio" 52.19
    (Android_apps.native_loc_ratio firefox)

let test_related_uniqueness () =
  (* Only Native Offloader covers the full combination (Table 5's
     punchline). *)
  match Related_systems.unique_full_combination () with
  | [ only ] ->
    Alcotest.(check string) "native offloader" "Native Offloader"
      only.Related_systems.sys_name
  | other -> Alcotest.failf "expected 1 system, got %d" (List.length other)

let test_table_rendering () =
  let t = Table.create ~title:"T" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "longer-name"; "12345" ];
  let text = Table.render t in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "7 lines" 7 (List.length lines);
  (* all body lines have equal width *)
  let widths =
    List.filter_map
      (fun line ->
        if String.length line > 0 && line.[0] = '|' then
          Some (String.length line)
        else None)
      lines
  in
  (match widths with
  | w :: rest ->
    Alcotest.(check bool) "aligned" true (List.for_all (Int.equal w) rest)
  | [] -> Alcotest.fail "no rows");
  (match Table.add_row t [ "only-one" ] with
  | () -> Alcotest.fail "expected arity error"
  | exception Invalid_argument _ -> ())

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "digits" "3.1416" (Table.cell_f ~digits:4 3.14159);
  Alcotest.(check string) "pct" "85.4%" (Table.cell_pct 85.44)

let tests =
  [
    Alcotest.test_case "corpus summary" `Quick test_corpus_summary;
    Alcotest.test_case "corpus ratios" `Quick test_corpus_ratios;
    Alcotest.test_case "related systems uniqueness" `Quick
      test_related_uniqueness;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table cells" `Quick test_cells;
  ]
