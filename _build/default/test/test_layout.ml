(* Layout engine tests, including the Figure 4 scenario: the Move
   struct {i8, i8, f64} lays out differently under the i386 ABI
   (f64 aligned to 4) and the ARM ABI (aligned to 8), and the unified
   environment equals the mobile one. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Arch = No_arch.Arch
module Layout = No_arch.Layout

let move_def =
  {
    Ir.s_name = "Move";
    Ir.s_fields = [ ("from", Ty.I8); ("to", Ty.I8); ("score", Ty.F64) ];
  }

let nested_def =
  {
    Ir.s_name = "Nested";
    Ir.s_fields =
      [ ("tag", Ty.I8); ("inner", Ty.Struct "Move"); ("tail", Ty.I32) ];
  }

let structs name =
  match name with
  | "Move" -> move_def
  | "Nested" -> nested_def
  | other -> invalid_arg other

let env arch = Layout.env_of_arch arch ~structs

let test_scalar_sizes () =
  let e = env Arch.arm32 in
  Alcotest.(check int) "i8" 1 (Layout.size_of e Ty.I8);
  Alcotest.(check int) "i16" 2 (Layout.size_of e Ty.I16);
  Alcotest.(check int) "i32" 4 (Layout.size_of e Ty.I32);
  Alcotest.(check int) "i64" 8 (Layout.size_of e Ty.I64);
  Alcotest.(check int) "f32" 4 (Layout.size_of e Ty.F32);
  Alcotest.(check int) "f64" 8 (Layout.size_of e Ty.F64);
  Alcotest.(check int) "ptr arm32" 4 (Layout.size_of e (Ty.Ptr Ty.I8));
  let e64 = env Arch.x86_64 in
  Alcotest.(check int) "ptr x86_64" 8 (Layout.size_of e64 (Ty.Ptr Ty.I8))

(* The exact Figure 4 divergence. *)
let test_figure4_move () =
  let arm = env Arch.arm32 and ia32 = env Arch.x86_32 in
  Alcotest.(check int) "ARM: score at 8" 8
    (Layout.field_offset arm "Move" "score");
  Alcotest.(check int) "ARM: size 16" 16 (Layout.size_of arm (Ty.Struct "Move"));
  Alcotest.(check int) "IA32: score at 4" 4
    (Layout.field_offset ia32 "Move" "score");
  Alcotest.(check int) "IA32: size 12" 12
    (Layout.size_of ia32 (Ty.Struct "Move"));
  (* Unified = mobile: the paper chooses the mobile layout as the
     standard. *)
  let unified = Layout.unified_env ~mobile:Arch.arm32 ~structs in
  Alcotest.(check int) "unified score at 8" 8
    (Layout.field_offset unified "Move" "score")

let test_nested_struct () =
  let e = env Arch.arm32 in
  Alcotest.(check int) "tag at 0" 0 (Layout.field_offset e "Nested" "tag");
  (* inner Move aligns to 8 (its max field alignment) *)
  Alcotest.(check int) "inner at 8" 8 (Layout.field_offset e "Nested" "inner");
  Alcotest.(check int) "tail at 24" 24 (Layout.field_offset e "Nested" "tail");
  (* size rounds up to alignment 8 *)
  Alcotest.(check int) "size 32" 32 (Layout.size_of e (Ty.Struct "Nested"))

let test_arrays () =
  let e = env Arch.arm32 in
  Alcotest.(check int) "array size" 48
    (Layout.size_of e (Ty.Array (Ty.Struct "Move", 3)));
  Alcotest.(check int) "array align = elem align" 8
    (Layout.align_of e (Ty.Array (Ty.Struct "Move", 3)))

let test_align_up () =
  Alcotest.(check int) "7->8" 8 (Layout.align_up 7 8);
  Alcotest.(check int) "8->8" 8 (Layout.align_up 8 8);
  Alcotest.(check int) "0->0" 0 (Layout.align_up 0 16);
  Alcotest.(check int) "9->16" 16 (Layout.align_up 9 8)

(* Property: offsets are monotonically increasing, within bounds, and
   each field fits before the next starts. *)
let test_layout_invariants () =
  List.iter
    (fun arch ->
      let e = env arch in
      List.iter
        (fun sname ->
          let fields = Layout.struct_layout e sname in
          let size = Layout.size_of e (Ty.Struct sname) in
          let rec check = function
            | (n1, o1, _, s1) :: ((_, o2, _, _) :: _ as rest) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s no overlap" sname n1)
                true
                (o1 + s1 <= o2);
              check rest
            | [ (n, o, _, s) ] ->
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s fits" sname n)
                true (o + s <= size)
            | [] -> ()
          in
          check fields)
        [ "Move"; "Nested" ])
    [ Arch.arm32; Arch.x86_64; Arch.x86_32; Arch.arm32_be ]

let test_performance_ratio () =
  let r = Arch.performance_ratio ~mobile:Arch.arm32 ~server:Arch.x86_64 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [4, 9]" r)
    true
    (r > 4.0 && r < 9.0);
  let same = Arch.performance_ratio ~mobile:Arch.arm32 ~server:Arch.arm32 in
  Alcotest.(check (float 1e-9)) "self ratio 1" 1.0 same

let tests =
  [
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "figure 4: Move realignment" `Quick test_figure4_move;
    Alcotest.test_case "nested struct" `Quick test_nested_struct;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "align_up" `Quick test_align_up;
    Alcotest.test_case "layout invariants" `Quick test_layout_invariants;
    Alcotest.test_case "performance ratio" `Quick test_performance_ratio;
  ]
