(* Memory subsystem tests: device memories, page faulting, dirty
   tracking, the UVA allocator (with QCheck properties), stack
   regions, and endianness-aware scalar encoding. *)

module Arch = No_arch.Arch
module Memory = No_mem.Memory
module Region = No_mem.Region
module Scalar = No_mem.Scalar
module Uva = No_mem.Uva
module Stack_alloc = No_mem.Stack_alloc

let heap_addr offset = Region.heap_base + offset

let test_home_memory () =
  let m = Memory.create Memory.Home in
  Alcotest.(check int) "zero before write" 0 (Memory.read_byte m (heap_addr 5));
  Memory.write_byte m (heap_addr 5) 0xAB;
  Alcotest.(check int) "read back" 0xAB (Memory.read_byte m (heap_addr 5));
  Alcotest.(check int) "masked" 0x01 (
    Memory.write_byte m (heap_addr 6) 0x101;
    Memory.read_byte m (heap_addr 6))

let test_remote_faults () =
  let home = Memory.create Memory.Home in
  Memory.write_byte home (heap_addr 100) 42;
  let remote = Memory.create Memory.Remote in
  (* no handler: fault escapes *)
  (match Memory.read_byte remote (heap_addr 100) with
  | _ -> Alcotest.fail "expected fault"
  | exception Memory.Page_fault page ->
    Alcotest.(check int) "faulting page" (Region.page_of_addr (heap_addr 100))
      page);
  (* copy-on-demand handler *)
  remote.Memory.on_fault <-
    Some
      (fun mem page ->
        Memory.install_page mem page (Memory.page_copy home page));
  let before = remote.Memory.fault_count in
  Alcotest.(check int) "served by handler" 42
    (Memory.read_byte remote (heap_addr 100));
  Alcotest.(check int) "one fault" (before + 1) remote.Memory.fault_count;
  (* resident now: no second fault *)
  ignore (Memory.read_byte remote (heap_addr 101));
  Alcotest.(check int) "still one fault" (before + 1) remote.Memory.fault_count

let test_dirty_tracking () =
  let m = Memory.create Memory.Home in
  m.Memory.track_dirty <- true;
  Memory.write_byte m (heap_addr 0) 1;
  Memory.write_byte m (heap_addr 1) 2;
  Memory.write_byte m (heap_addr Region.page_size) 3;
  Alcotest.(check int) "two dirty pages" 2
    (List.length (Memory.dirty_pages m));
  ignore (Memory.read_byte m (heap_addr (2 * Region.page_size)));
  Alcotest.(check int) "reads do not dirty" 2
    (List.length (Memory.dirty_pages m));
  Memory.clear_dirty m;
  Alcotest.(check int) "cleared" 0 (List.length (Memory.dirty_pages m))

let test_block_ops () =
  let m = Memory.create Memory.Home in
  let data = Bytes.of_string "native offloader" in
  Memory.write_block m (heap_addr 10) data;
  Alcotest.(check string) "roundtrip" "native offloader"
    (Bytes.to_string (Memory.read_block m (heap_addr 10) (Bytes.length data)))

let test_region_map () =
  Alcotest.(check string) "null guard" "null-guard"
    (Region.region_to_string (Region.region_of_addr 0));
  Alcotest.(check string) "heap" "heap"
    (Region.region_to_string (Region.region_of_addr Region.heap_base));
  Alcotest.(check string) "mobile stack" "mobile-stack"
    (Region.region_to_string (Region.region_of_addr Region.mobile_stack_base));
  Alcotest.(check string) "server stack" "server-stack"
    (Region.region_to_string (Region.region_of_addr Region.server_stack_base));
  Alcotest.(check bool) "stacks disjoint" true
    (Region.mobile_stack_limit <= Region.server_stack_base)

let test_uva_basics () =
  let u = Uva.create () in
  let a = Uva.alloc u 100 in
  let b = Uva.alloc u 200 in
  Alcotest.(check bool) "disjoint" true (b >= a + 100);
  Alcotest.(check bool) "aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check int) "live bytes" (112 + 208) (Uva.live_bytes u);
  Uva.dealloc u a;
  Alcotest.(check int) "after free" 208 (Uva.live_bytes u);
  (* freed space is reused *)
  let c = Uva.alloc u 50 in
  Alcotest.(check int) "first fit reuse" a c;
  (match Uva.dealloc u (a + 16) with
  | () -> Alcotest.fail "expected invalid free"
  | exception Uva.Invalid_free _ -> ())

let test_uva_coalescing () =
  let u = Uva.create () in
  let blocks = List.init 8 (fun _ -> Uva.alloc u 64) in
  List.iter (Uva.dealloc u) blocks;
  (* all 8 blocks coalesce into one range, so a large allocation fits
     without growing the break *)
  let hwm = Uva.high_water_mark u in
  let big = Uva.alloc u (8 * 64) in
  Alcotest.(check int) "reused coalesced space" (List.hd blocks) big;
  Alcotest.(check int) "no growth" hwm (Uva.high_water_mark u)

(* QCheck: after any sequence of allocs and frees, live allocations
   never overlap and live_bytes is consistent. *)
let prop_uva_no_overlap =
  QCheck.Test.make ~name:"uva allocations never overlap" ~count:100
    QCheck.(list (int_range 1 500))
    (fun sizes ->
      let u = Uva.create () in
      let live = ref [] in
      List.iteri
        (fun i size ->
          if i mod 3 = 2 && !live <> [] then begin
            match !live with
            | (addr, _) :: rest ->
              Uva.dealloc u addr;
              live := rest
            | [] -> ()
          end
          else begin
            let addr = Uva.alloc u size in
            live := (addr, size) :: !live
          end)
        sizes;
      let sorted =
        List.sort (fun (a, _) (b, _) -> compare a b) !live
      in
      let rec disjoint = function
        | (a, sa) :: ((b, _) :: _ as rest) ->
          a + sa <= b && disjoint rest
        | _ -> true
      in
      disjoint sorted)

let test_stack_regions () =
  let s = Stack_alloc.mobile () in
  let mark = Stack_alloc.frame_mark s in
  let a = Stack_alloc.alloc s 24 8 in
  let b = Stack_alloc.alloc s 8 8 in
  Alcotest.(check bool) "stack grows" true (b >= a + 24);
  Stack_alloc.release s mark;
  let c = Stack_alloc.alloc s 8 8 in
  Alcotest.(check int) "frame released" a c;
  Alcotest.(check bool) "high water survives" true
    (Stack_alloc.high_water_bytes s >= 32)

(* Endianness encode/decode roundtrips and bswap involution. *)
let prop_scalar_roundtrip =
  QCheck.Test.make ~name:"scalar store/load roundtrip (LE and BE)" ~count:200
    QCheck.(pair int64 (int_range 1 8))
    (fun (v, nbytes) ->
      let check endianness =
        let buf = Bytes.make 16 '\000' in
        Scalar.store_int endianness
          ~write_byte:(fun a b -> Bytes.set buf a (Char.chr b))
          0 nbytes v;
        let got =
          Scalar.load_int endianness
            ~read_byte:(fun a -> Char.code (Bytes.get buf a))
            0 nbytes
        in
        Int64.equal got (Int64.logand v (Scalar.mask_of_bytes nbytes))
      in
      check Arch.Little && check Arch.Big)

let prop_bswap_involution =
  QCheck.Test.make ~name:"bswap twice is identity" ~count:200
    QCheck.(pair int64 (int_range 1 8))
    (fun (v, nbytes) ->
      let masked = Int64.logand v (Scalar.mask_of_bytes nbytes) in
      Int64.equal (Scalar.bswap (Scalar.bswap masked nbytes) nbytes) masked)

let test_cross_endian_bytes () =
  (* An LE store read back BE gives the swapped pattern — the bug the
     endianness translation pass exists to fix. *)
  let buf = Bytes.make 8 '\000' in
  Scalar.store_int Arch.Little
    ~write_byte:(fun a b -> Bytes.set buf a (Char.chr b))
    0 4 0x11223344L;
  let be =
    Scalar.load_int Arch.Big
      ~read_byte:(fun a -> Char.code (Bytes.get buf a))
      0 4
  in
  Alcotest.(check int64) "byte swapped" 0x44332211L be;
  Alcotest.(check int64) "bswap recovers" 0x11223344L (Scalar.bswap be 4)

let test_sign_extension () =
  Alcotest.(check int64) "0xFF as i8 = -1" (-1L) (Scalar.sign_extend 0xFFL 1);
  Alcotest.(check int64) "0x7F as i8 = 127" 127L (Scalar.sign_extend 0x7FL 1);
  Alcotest.(check int64) "i64 unchanged" Int64.min_int
    (Scalar.sign_extend Int64.min_int 8)

let tests =
  [
    Alcotest.test_case "home memory" `Quick test_home_memory;
    Alcotest.test_case "remote faults" `Quick test_remote_faults;
    Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
    Alcotest.test_case "block ops" `Quick test_block_ops;
    Alcotest.test_case "region map" `Quick test_region_map;
    Alcotest.test_case "uva basics" `Quick test_uva_basics;
    Alcotest.test_case "uva coalescing" `Quick test_uva_coalescing;
    QCheck_alcotest.to_alcotest prop_uva_no_overlap;
    Alcotest.test_case "stack regions" `Quick test_stack_regions;
    QCheck_alcotest.to_alcotest prop_scalar_roundtrip;
    QCheck_alcotest.to_alcotest prop_bswap_involution;
    Alcotest.test_case "cross endian bytes" `Quick test_cross_endian_bytes;
    Alcotest.test_case "sign extension" `Quick test_sign_extension;
  ]
