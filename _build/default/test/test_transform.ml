(* Transformation pass tests: each Section 3.2-3.4 pass in isolation,
   plus pipeline-level invariants. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Validate = No_ir.Validate
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Host = No_exec.Host
module Interp = No_exec.Interp
module Value = No_exec.Value
module Heap_replace = No_transform.Heap_replace
module Global_realloc = No_transform.Global_realloc
module Lower_gep = No_transform.Lower_gep
module Addr_convert = No_transform.Addr_convert
module Endian_translate = No_transform.Endian_translate
module Fnptr_map = No_transform.Fnptr_map
module Remote_io = No_transform.Remote_io
module Partition = No_transform.Partition
module Pipeline = No_transform.Pipeline

let count_calls_to name (m : Ir.modul) =
  List.fold_left
    (fun acc f ->
      Ir.fold_instrs
        (fun acc instr ->
          match instr with
          | Ir.Assign (_, Ir.Call (n, _)) | Ir.Effect (Ir.Call (n, _))
            when String.equal n name ->
            acc + 1
          | Ir.Assign _ | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> acc)
        acc f)
    0 m.Ir.m_funcs

let test_heap_replace () =
  let t = B.create "heap" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let p = B.call fb "malloc" [ B.i64 64 ] in
        let q = B.call fb "malloc" [ B.i64 32 ] in
        B.call_void fb "free" [ p ];
        B.call_void fb "free" [ q ];
        B.ret fb (Some (B.i64 0)))
  in
  let m = B.finish t in
  let m', stats = Heap_replace.run m in
  Alcotest.(check int) "malloc sites" 2 stats.Heap_replace.malloc_sites;
  Alcotest.(check int) "free sites" 2 stats.Heap_replace.free_sites;
  Alcotest.(check int) "no malloc left" 0 (count_calls_to "malloc" m');
  Alcotest.(check int) "u_malloc present" 2 (count_calls_to "u_malloc" m');
  Validate.check_module m'

let structs_of m name = Ir.find_struct_exn m name

let run_main ?(arch = Arch.arm32) ?layout ?(script = []) m =
  let layout =
    match layout with
    | Some l -> l
    | None -> Layout.env_of_arch arch ~structs:(structs_of m)
  in
  let host =
    Host.create ~arch ~role:Host.Mobile ~modul:m ~layout
      ~console:(No_exec.Console.create ~script ()) ()
  in
  (host, Interp.run_main host)

let build_global_module () =
  let t = B.create "globals" in
  B.global t "counter" Ty.I64 (Ir.Int_init (40L, Ty.I64));
  B.global t "unused_global" Ty.I64 Ir.Zero_init;
  let _ =
    B.func t "bump" ~params:[] ~ret:Ty.Void (fun fb _ ->
        let v = B.load fb Ty.I64 (Ir.Global "counter") in
        B.store fb Ty.I64 (B.iadd fb v (B.i64 1)) (Ir.Global "counter");
        B.ret_void fb)
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.call_void fb "bump" [];
        B.call_void fb "bump" [];
        B.ret fb (Some (B.load fb Ty.I64 (Ir.Global "counter"))))
  in
  B.finish t

let test_global_realloc () =
  let m = build_global_module () in
  let m', stats = Global_realloc.run m in
  Validate.check_module m';
  Alcotest.(check (list string)) "counter reallocated" [ "counter" ]
    stats.Global_realloc.reallocated;
  Alcotest.(check (list string)) "unused untouched" [ "unused_global" ]
    stats.Global_realloc.untouched;
  (* slot global exists, original gone *)
  Alcotest.(check bool) "slot present" true
    (Ir.find_global m' "counter__re" <> None);
  Alcotest.(check bool) "original gone" true
    (Ir.find_global m' "counter" = None);
  Alcotest.(check int) "init extern call in main" 1
    (count_calls_to "__uva_init_global$counter" m');
  (* behaviour preserved when an extern handler services the init *)
  let layout = Layout.env_of_arch Arch.arm32 ~structs:(structs_of m') in
  let host =
    Host.create ~arch:Arch.arm32 ~role:Host.Mobile ~modul:m' ~layout ()
  in
  host.Host.hooks.Host.extern_call <-
    Some
      (fun name _args ->
        match name with
        | "__uva_init_global$counter" ->
          let addr = No_mem.Uva.alloc host.Host.uva 8 in
          Host.store_scalar host Ty.I64 addr (Value.VInt 40L);
          Some (Value.VInt (Int64.of_int addr))
        | _ -> None);
  Alcotest.(check int64) "reallocated behaviour" 42L
    (Value.to_int (Interp.run_main host))

(* Explicit GEP lowering computes the same addresses as symbolic GEP
   interpretation under the same layout. *)
let build_struct_module () =
  let t = B.create "structs" in
  let pair = B.struct_ t "Pair" [ ("a", Ty.I8); ("b", Ty.F64) ] in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let arr = B.alloca fb pair 4 in
        B.for_ fb ~name:"fill" ~from:(B.i64 0) ~below:(B.i64 4) (fun i ->
            let cell = B.gep fb pair arr [ Ir.Index i ] in
            let i8v = B.cast fb Ir.Trunc ~src:Ty.I64 i ~dst:Ty.I8 in
            B.store fb Ty.I8 i8v (B.gep fb pair cell [ Ir.Field "a" ]);
            let fv = B.cast fb Ir.Si_to_fp ~src:Ty.I64 i ~dst:Ty.F64 in
            B.store fb Ty.F64 fv (B.gep fb pair cell [ Ir.Field "b" ]));
        let acc = B.alloca fb Ty.F64 1 in
        B.store fb Ty.F64 (B.f64 0.0) acc;
        B.for_ fb ~name:"sum" ~from:(B.i64 0) ~below:(B.i64 4) (fun i ->
            let cell = B.gep fb pair arr [ Ir.Index i ] in
            let b = B.load fb Ty.F64 (B.gep fb pair cell [ Ir.Field "b" ]) in
            let a = B.load fb Ty.I8 (B.gep fb pair cell [ Ir.Field "a" ]) in
            let a64 = B.cast fb Ir.Sext ~src:Ty.I8 a ~dst:Ty.I64 in
            let af = B.cast fb Ir.Si_to_fp ~src:Ty.I64 a64 ~dst:Ty.F64 in
            let cur = B.load fb Ty.F64 acc in
            B.store fb Ty.F64 (B.fadd fb cur (B.fadd fb b af)) acc);
        let total = B.load fb Ty.F64 acc in
        B.ret fb (Some (B.cast fb Ir.Fp_to_si ~src:Ty.F64 total ~dst:Ty.I64)))
  in
  B.finish t

let test_lower_gep_preserves_semantics () =
  let m = build_struct_module () in
  let _, symbolic = run_main m in
  let layout = Layout.env_of_arch Arch.arm32 ~structs:(structs_of m) in
  let m', stats = Lower_gep.run layout m in
  Validate.check_module m';
  Alcotest.(check bool) "geps lowered" true (stats.Lower_gep.geps_lowered > 4);
  (* no symbolic GEP remains *)
  let remaining =
    List.fold_left
      (fun acc f ->
        Ir.fold_instrs
          (fun acc instr ->
            match instr with
            | Ir.Assign (_, Ir.Gep _) | Ir.Effect (Ir.Gep _) -> acc + 1
            | Ir.Assign _ | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> acc)
          acc f)
      0 m'.Ir.m_funcs
  in
  Alcotest.(check int) "no geps left" 0 remaining;
  let _, lowered = run_main ~layout m' in
  Alcotest.(check bool) "same result" true (Value.equal symbolic lowered)

let test_addr_convert () =
  let t = B.create "addr" in
  B.global t "slot" (Ty.Ptr Ty.I64) Ir.Zero_init;
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let raw = B.call fb "malloc" [ B.i64 16 ] in
        let p = B.cast fb Ir.Bitcast ~src:(Ty.Ptr Ty.I8) raw ~dst:(Ty.Ptr Ty.I64) in
        B.store fb (Ty.Ptr Ty.I64) p (Ir.Global "slot");
        let p' = B.load fb (Ty.Ptr Ty.I64) (Ir.Global "slot") in
        B.store fb Ty.I64 (B.i64 99) p';
        B.ret fb (Some (B.load fb Ty.I64 p')))
  in
  let m = B.finish t in
  (* same widths: no-op *)
  let same, s0 = Addr_convert.run ~device_ptr_bytes:4 ~unified_ptr_bytes:4 m in
  Alcotest.(check int) "no-op when equal" 0 s0.Addr_convert.loads_converted;
  Alcotest.(check bool) "module untouched" true (same == m);
  (* 64-bit device, 32-bit unified: pointer accesses become i32 *)
  let m', stats = Addr_convert.run ~device_ptr_bytes:8 ~unified_ptr_bytes:4 m in
  Validate.check_module m';
  Alcotest.(check int) "one load converted" 1 stats.Addr_convert.loads_converted;
  Alcotest.(check int) "one store converted" 1
    stats.Addr_convert.stores_converted;
  (* no pointer-typed memory access remains *)
  let ptr_accesses =
    List.fold_left
      (fun acc f ->
        Ir.fold_instrs
          (fun acc instr ->
            match instr with
            | Ir.Assign (_, Ir.Load ((Ty.Ptr _ | Ty.Fn_ptr _), _))
            | Ir.Store ((Ty.Ptr _ | Ty.Fn_ptr _), _, _) -> acc + 1
            | Ir.Assign _ | Ir.Effect _ | Ir.Store _ | Ir.Asm _ -> acc)
          acc f)
      0 m'.Ir.m_funcs
  in
  Alcotest.(check int) "no pointer-width accesses" 0 ptr_accesses

let test_endian_translate () =
  let t = B.create "endian" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let p = B.alloca fb Ty.I32 1 in
        B.store fb Ty.I32 (B.i32 7) p;
        let v = B.load fb Ty.I32 p in
        let q = B.alloca fb Ty.I8 1 in
        B.store fb Ty.I8 (B.i8 1) q;
        B.ret fb (Some (B.cast fb Ir.Sext ~src:Ty.I32 v ~dst:Ty.I64)))
  in
  let m = B.finish t in
  let same, s0 =
    Endian_translate.run ~device:Arch.Little ~unified:Arch.Little m
  in
  Alcotest.(check int) "no swaps same endian" 0 s0.Endian_translate.swaps_inserted;
  ignore same;
  let m', stats =
    Endian_translate.run ~device:Arch.Big ~unified:Arch.Little m
  in
  Validate.check_module m';
  (* i32 store + i32 load swapped; i8 accesses untouched *)
  Alcotest.(check int) "two swaps" 2 stats.Endian_translate.swaps_inserted

let test_fnptr_map_pass () =
  let t = B.create "fnptr" in
  let sg = Ty.signature [] Ty.I64 in
  B.global t "slot" (Ty.Fn_ptr sg) (Ir.Fn_init "target");
  let _ =
    B.func t "target" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.ret fb (Some (B.i64 5)))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.store fb (Ty.Fn_ptr sg) (Ir.Fn_addr "target") (Ir.Global "slot");
        let f = B.load fb (Ty.Fn_ptr sg) (Ir.Global "slot") in
        B.ret fb (Some (B.call_ind fb sg f [])))
  in
  let m = B.finish t in
  let m', stats = Fnptr_map.run m in
  Validate.check_module m';
  Alcotest.(check int) "load map" 1 stats.Fnptr_map.load_maps;
  Alcotest.(check int) "store map" 1 stats.Fnptr_map.store_maps;
  (* with identity mapping the program still works *)
  let _, result = run_main m' in
  Alcotest.(check int64) "behaviour preserved" 5L (Value.to_int result)

let test_remote_io_pass () =
  let t = B.create "rio" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.call_void fb "print_i64" [ B.i64 1 ];
        B.call_void fb "print_newline" [];
        let buf = B.alloca fb Ty.I8 8 in
        let fd = B.call fb "f_open" [ buf ] in
        B.call_void fb "f_close" [ fd ];
        B.ret fb (Some (B.i64 0)))
  in
  let m = B.finish t in
  let m', stats = Remote_io.run m in
  Alcotest.(check int) "four sites" 4 stats.Remote_io.sites_rewritten;
  Alcotest.(check int) "r_print_i64" 1 (count_calls_to "r_print_i64" m');
  Alcotest.(check int) "rf_open" 1 (count_calls_to "rf_open" m');
  Alcotest.(check int) "no local print left" 0 (count_calls_to "print_i64" m')

let test_partition_listener_shape () =
  let t = B.create "part" in
  let _ =
    B.func t "hot_a" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        B.ret fb (Some (B.imul fb (List.nth args 0) (B.i64 2))))
  in
  let _ =
    B.func t "hot_b" ~params:[ Ty.F64 ] ~ret:Ty.F64 (fun fb args ->
        B.ret fb (Some (B.fmul fb (List.nth args 0) (B.f64 2.0))))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let a = B.call fb "hot_a" [ B.i64 21 ] in
        B.effect fb (Ir.Call ("hot_b", [ B.f64 1.0 ]));
        B.ret fb (Some a))
  in
  let m = B.finish t in
  let parts = Partition.run m ~targets:[ "hot_a"; "hot_b" ] in
  Validate.check_module parts.Partition.p_mobile;
  Validate.check_module parts.Partition.p_server;
  Alcotest.(check int) "ids assigned" 2 (List.length parts.Partition.p_targets);
  (* mobile: calls redirected to dispatchers *)
  Alcotest.(check int) "main calls dispatcher" 1
    (count_calls_to "__dispatch$hot_a" parts.Partition.p_mobile);
  Alcotest.(check int) "original call gone from main" 1
    (count_calls_to "hot_a" parts.Partition.p_mobile);
  (* the remaining direct call is inside the dispatcher's local arm *)
  (* server: listener + serves + targets, no main *)
  Alcotest.(check bool) "listener" true
    (Ir.find_func parts.Partition.p_server Partition.listener_name <> None);
  Alcotest.(check bool) "serve a" true
    (Ir.find_func parts.Partition.p_server "__serve$hot_a" <> None);
  Alcotest.(check bool) "main removed" true
    (Ir.find_func parts.Partition.p_server "main" = None);
  Alcotest.(check bool) "removed list mentions main" true
    (List.mem "main" parts.Partition.p_removed)

let test_pipeline_end_to_end_validates () =
  let m = build_struct_module () in
  let out =
    Pipeline.run ~mobile:Arch.arm32 ~server:Arch.x86_64 ~targets:[ "main" ] m
  in
  (* main as target is degenerate but exercises every pass *)
  Validate.check_module out.Pipeline.o_mobile;
  Validate.check_module out.Pipeline.o_server;
  Alcotest.(check bool) "stats populated" true
    (out.Pipeline.o_stats.Pipeline.st_total_functions >= 1)

let tests =
  [
    Alcotest.test_case "heap replacement" `Quick test_heap_replace;
    Alcotest.test_case "global reallocation" `Quick test_global_realloc;
    Alcotest.test_case "gep lowering preserves semantics" `Quick
      test_lower_gep_preserves_semantics;
    Alcotest.test_case "address size conversion" `Quick test_addr_convert;
    Alcotest.test_case "endianness translation" `Quick test_endian_translate;
    Alcotest.test_case "fn pointer mapping" `Quick test_fnptr_map_pass;
    Alcotest.test_case "remote io rewrite" `Quick test_remote_io_pass;
    Alcotest.test_case "partition shape" `Quick test_partition_listener_shape;
    Alcotest.test_case "pipeline validates" `Quick
      test_pipeline_end_to_end_validates;
  ]

(* {1 Optimizer} *)

module Optimize = No_transform.Optimize

let test_constant_folding () =
  let t = B.create "fold" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let a = B.iadd fb (B.i64 40) (B.i64 2) in       (* folds to 42 *)
        let b = B.imul fb a (B.i64 1) in                (* identity *)
        let c = B.iadd fb b (B.i64 0) in                (* identity *)
        let dead = B.imul fb (B.i64 9) (B.i64 9) in     (* dead *)
        ignore dead;
        B.ret fb (Some c))
  in
  let m = B.finish t in
  let m', stats = Optimize.run m in
  Validate.check_module m';
  Alcotest.(check bool) "folded some" true (stats.Optimize.folded >= 3);
  let f = Ir.find_func_exn m' "main" in
  let instr_count = Ir.fold_instrs (fun n _ -> n + 1) 0 f in
  Alcotest.(check int) "everything folded away" 0 instr_count;
  (* behaviour unchanged *)
  let _, v = run_main m' in
  Alcotest.(check int64) "result" 42L (Value.to_int v)

let test_dce_keeps_effects () =
  let t = B.create "dce" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let p = B.call fb "malloc" [ B.i64 8 ] in      (* unused but a call *)
        ignore p;
        let unused_pure = B.ixor fb (B.i64 1) (B.i64 2) in
        ignore unused_pure;
        B.ret fb (Some (B.i64 5)))
  in
  let m = B.finish t in
  let m', stats = Optimize.run m in
  Validate.check_module m';
  Alcotest.(check bool) "deleted or folded the pure value" true
    (stats.Optimize.deleted + stats.Optimize.folded >= 1);
  let f = Ir.find_func_exn m' "main" in
  let calls = Ir.fold_instrs (fun n i ->
      match i with
      | Ir.Assign (_, Ir.Call _) | Ir.Effect (Ir.Call _) -> n + 1
      | _ -> n) 0 f in
  Alcotest.(check int) "call preserved" 1 calls;
  let _, v = run_main m' in
  Alcotest.(check int64) "result" 5L (Value.to_int v)

(* Property: optimizing any workload module preserves its console
   behaviour on the profiling input. *)
let test_optimize_preserves_workloads () =
  List.iter
    (fun (e : No_workloads.Registry.entry) ->
      let m = e.No_workloads.Registry.e_build () in
      let m', _ = Optimize.run m in
      Validate.check_module m';
      let before =
        No_runtime.Local_run.run ~script:e.No_workloads.Registry.e_profile_script
          ~files:e.No_workloads.Registry.e_files m
      in
      let after =
        No_runtime.Local_run.run ~script:e.No_workloads.Registry.e_profile_script
          ~files:e.No_workloads.Registry.e_files m'
      in
      Alcotest.(check string)
        (e.No_workloads.Registry.e_name ^ " unchanged")
        before.No_runtime.Local_run.lr_console
        after.No_runtime.Local_run.lr_console;
      Alcotest.(check bool)
        (e.No_workloads.Registry.e_name ^ " not slower")
        true
        (after.No_runtime.Local_run.lr_total_s
         <= before.No_runtime.Local_run.lr_total_s *. 1.001))
    No_workloads.Registry.spec

let optimizer_tests =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_effects;
    Alcotest.test_case "optimize preserves workloads" `Quick
      test_optimize_preserves_workloads;
  ]

let tests = tests @ optimizer_tests
