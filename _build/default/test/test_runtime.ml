(* Runtime/session tests: dirty-page write-back, copy-on-demand vs
   prefetch vs copy-all, write-back compression, cross-architecture
   configurations (big-endian mobile; 32-bit server with the Figure 4
   layout), and the stack separation guarantee. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Arch = No_arch.Arch
module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Compiler = Native_offloader.Compiler
module W = No_workloads.Support

(* A small offloadable program: the hot kernel makes several passes
   over a heap buffer (reads + writes: the pages come to the server by
   copy-on-demand and return as dirty pages), accumulating a value the
   mobile side then prints together with a buffer checksum. *)
let build_scaler () =
  let t = B.create "scaler" in
  W.add_checksum t;
  B.global t "buf" W.i64p Ir.Zero_init;
  let _ =
    B.func t "hot" ~params:[ W.i64p; Ty.I64; Ty.I64 ] ~ret:Ty.I64
      (fun fb args ->
        let buf = List.nth args 0
        and words = List.nth args 1
        and passes = List.nth args 2 in
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        B.for_ fb ~name:"hot_pass" ~from:(B.i64 0) ~below:passes (fun _p ->
            B.for_ fb ~name:"hot_words" ~from:(B.i64 0) ~below:words (fun i ->
                let slot = B.gep fb Ty.I64 buf [ Ir.Index i ] in
                let v = B.load fb Ty.I64 slot in
                let v' = B.iadd fb (B.imul fb v (B.i64 3)) (B.i64 1) in
                B.store fb Ty.I64 (B.iand fb v' (B.i64 0xFFFFFFF)) slot;
                let a = B.load fb Ty.I64 acc in
                B.store fb Ty.I64 (B.ixor fb a v') acc));
        B.ret fb (Some (B.load fb Ty.I64 acc)))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let words, passes = W.scan2 fb in
        let buf = W.malloc_words fb (B.imul fb words (B.i64 8)) in
        B.store fb W.i64p buf (Ir.Global "buf");
        W.fill_pattern fb ~name:"fill" buf ~words ~seed:(B.i64 3)
          ~step:(B.i64 17);
        let r = B.call fb "hot" [ buf; words; passes ] in
        W.print_result t fb ~label:"acc" r;
        let bytes = B.imul fb words (B.i64 8) in
        let ck = B.call fb "checksum" [ buf; bytes ] in
        W.print_result t fb ~label:"checksum" ck;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

let profile_script = W.script_of_ints [ 400; 4 ]
let eval_script = W.script_of_ints [ 4000; 6 ]

let compile_scaler ?mobile ?server () =
  Compiler.compile ?mobile ?server ~profile_script ~eval_scale:12.0
    (build_scaler ())

let run_with config compiled =
  let session =
    Session.create ~config ~script:eval_script compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  Session.run session

let local_console compiled =
  (Local_run.run ~script:eval_script compiled.Compiler.c_original)
    .Local_run.lr_console

(* Dirty pages written on the server land back in mobile memory: the
   mobile-side checksum sees the server's writes. *)
let test_writeback_correctness () =
  let compiled = compile_scaler () in
  let report = run_with (Session.default_config ()) compiled in
  Alcotest.(check string) "console identical" (local_console compiled)
    report.Session.rep_console;
  Alcotest.(check int) "one offload" 1 report.Session.rep_offloads;
  Alcotest.(check bool) "dirty pages returned" true
    (report.Session.rep_bytes_to_mobile > 4096)

let test_copy_on_demand_vs_prefetch () =
  let compiled = compile_scaler () in
  let no_prefetch =
    { (Session.default_config ()) with Session.prefetch = false }
  in
  let r1 = run_with no_prefetch compiled in
  Alcotest.(check string) "faulting run correct" (local_console compiled)
    r1.Session.rep_console;
  Alcotest.(check bool) "faults happened" true (r1.Session.rep_faults >= 8);
  let compiled2 = compile_scaler () in
  let r2 = run_with (Session.default_config ()) compiled2 in
  Alcotest.(check bool) "prefetch avoids faults" true
    (r2.Session.rep_faults < r1.Session.rep_faults);
  Alcotest.(check bool) "prefetch is faster" true
    (r2.Session.rep_total_s < r1.Session.rep_total_s)

let test_copy_all_ablation () =
  let compiled = compile_scaler () in
  let copy_all =
    { (Session.default_config ()) with Session.copy_all = true }
  in
  let r = run_with copy_all compiled in
  Alcotest.(check string) "copy-all correct" (local_console compiled)
    r.Session.rep_console;
  Alcotest.(check bool) "ships at least the working set" true
    (r.Session.rep_bytes_to_server >= 4000 * 8)

let test_writeback_compression () =
  let with_compression compress =
    let compiled = compile_scaler () in
    let config =
      { (Session.default_config ()) with Session.compress_writeback = compress }
    in
    run_with config compiled
  in
  let on = with_compression true and off = with_compression false in
  Alcotest.(check string) "same console" on.Session.rep_console
    off.Session.rep_console;
  Alcotest.(check bool) "compression shrinks wire bytes" true
    (on.Session.rep_wire_bytes_to_mobile < off.Session.rep_wire_bytes_to_mobile);
  Alcotest.(check int) "raw bytes equal" off.Session.rep_bytes_to_mobile
    on.Session.rep_bytes_to_mobile

(* Synthetic big-endian mobile: the endianness translation pass must
   be exercised and the results must still match. *)
let test_cross_endian_offload () =
  let compiled = compile_scaler ~mobile:Arch.arm32_be () in
  let stats =
    compiled.Compiler.c_output.No_transform.Pipeline.o_stats
  in
  Alcotest.(check bool) "swaps inserted" true
    (stats.No_transform.Pipeline.st_endian_swaps > 0);
  let config =
    { (Session.default_config ()) with Session.mobile_arch = Arch.arm32_be }
  in
  let report = run_with config compiled in
  let local =
    Local_run.run ~arch:Arch.arm32_be ~script:eval_script
      compiled.Compiler.c_original
  in
  Alcotest.(check string) "cross-endian console identical"
    local.Local_run.lr_console report.Session.rep_console;
  Alcotest.(check int) "offloaded" 1 report.Session.rep_offloads

(* 32-bit little-endian server with the IA32 struct rules: same
   pointer width (no address conversion), no endian swaps — but the
   unified layout is what keeps struct offsets agreeing (Figure 4). *)
let test_x86_32_server () =
  let compiled = compile_scaler ~server:Arch.x86_32 () in
  let stats = compiled.Compiler.c_output.No_transform.Pipeline.o_stats in
  Alcotest.(check int) "no addr conversion" 0
    stats.No_transform.Pipeline.st_addr_loads;
  Alcotest.(check int) "no endian swaps" 0
    stats.No_transform.Pipeline.st_endian_swaps;
  let config =
    { (Session.default_config ()) with Session.server_arch = Arch.x86_32 }
  in
  let report = run_with config compiled in
  Alcotest.(check string) "x86_32 server correct" (local_console compiled)
    report.Session.rep_console

(* The chess Move struct crossing to an x86_32 server is the exact
   Figure 4 case: without realignment the server would read garbage
   score values.  With the unified layout, output matches. *)
let test_figure4_chess_on_x86_32 () =
  let chess = No_workloads.Chess.build () in
  let compiled =
    Compiler.compile ~server:Arch.x86_32
      ~profile_script:(No_workloads.Chess.script ~depth:3 ~turns:2)
      ~eval_scale:2.0 chess
  in
  let script = No_workloads.Chess.script ~depth:5 ~turns:2 in
  let local = Local_run.run ~script compiled.Compiler.c_original in
  let config =
    { (Session.default_config ()) with Session.server_arch = Arch.x86_32 }
  in
  let session =
    Session.create ~config ~script compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Alcotest.(check string) "figure 4 case correct" local.Local_run.lr_console
    report.Session.rep_console;
  Alcotest.(check bool) "offloads happened" true
    (report.Session.rep_offloads > 0)

(* Stack separation: the server allocates its frames in the server
   stack region, so mobile stack pages are never dirtied by callee
   frames (only by explicit writes through shared pointers). *)
let test_stack_separation () =
  let compiled = compile_scaler () in
  let config =
    { (Session.default_config ()) with Session.prefetch = false }
  in
  let session =
    Session.create ~config ~script:eval_script compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  (* hot's frame (acc alloca) lives on the server stack: no mobile
     stack page needs to travel *)
  Alcotest.(check string) "still correct" (local_console compiled)
    report.Session.rep_console

let test_power_trace_has_phases () =
  let compiled = compile_scaler () in
  let session =
    Session.create ~config:(Session.default_config ()) ~script:eval_script
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  ignore (Session.run session);
  let by_state = No_power.Battery.time_by_state (Session.battery session) in
  let time state =
    Option.value ~default:0.0 (List.assoc_opt state by_state)
  in
  Alcotest.(check bool) "computing time" true
    (time No_power.Power_model.Computing > 0.0);
  Alcotest.(check bool) "waiting time" true
    (time No_power.Power_model.Waiting > 0.0);
  Alcotest.(check bool) "transmit time" true
    (time No_power.Power_model.Transmitting > 0.0);
  Alcotest.(check bool) "receive time" true
    (time No_power.Power_model.Receiving > 0.0)

let tests =
  [
    Alcotest.test_case "write-back correctness" `Quick
      test_writeback_correctness;
    Alcotest.test_case "copy-on-demand vs prefetch" `Quick
      test_copy_on_demand_vs_prefetch;
    Alcotest.test_case "copy-all ablation" `Quick test_copy_all_ablation;
    Alcotest.test_case "write-back compression" `Quick
      test_writeback_compression;
    Alcotest.test_case "cross-endian offload" `Quick test_cross_endian_offload;
    Alcotest.test_case "x86_32 server" `Quick test_x86_32_server;
    Alcotest.test_case "figure 4 chess on x86_32" `Quick
      test_figure4_chess_on_x86_32;
    Alcotest.test_case "stack separation" `Quick test_stack_separation;
    Alcotest.test_case "power trace phases" `Quick test_power_trace_has_phases;
  ]

(* {1 Bandwidth prediction (the NWSLite-style extension)} *)

module Bandwidth_predictor = No_estimator.Bandwidth_predictor

let test_predictor_unit () =
  let p = Bandwidth_predictor.create ~initial_bps:10e6 () in
  Alcotest.(check (float 1.0)) "initial" 10e6 (Bandwidth_predictor.predict_bps p);
  (* tiny control messages are ignored *)
  Bandwidth_predictor.observe p ~bytes:64 ~seconds:1.0;
  Alcotest.(check int) "ignored" 0 (Bandwidth_predictor.sample_count p);
  (* consistent slow samples drag the estimate down *)
  for _ = 1 to 20 do
    Bandwidth_predictor.observe p ~bytes:125_000 ~seconds:10.0
    (* = 100 kbps *)
  done;
  let predicted = Bandwidth_predictor.predict_bps p in
  Alcotest.(check bool)
    (Printf.sprintf "converged to ~100kbps (got %.0f)" predicted)
    true
    (predicted < 150_000.0 && predicted > 50_000.0)

(* A session created on a congested link but seeded with a stale fast
   belief: the first think() offloads on the stale belief, the
   transfer observations correct it, and the remaining invocations are
   refused — mid-run adaptation with no reconfiguration. *)
let test_session_adapts_to_real_bandwidth () =
  let entry = Option.get (No_workloads.Registry.by_name "458.sjeng") in
  let compiled =
    Compiler.compile ~profile_script:entry.No_workloads.Registry.e_profile_script
      ~profile_files:entry.No_workloads.Registry.e_files
      ~eval_scale:entry.No_workloads.Registry.e_eval_scale
      (entry.No_workloads.Registry.e_build ())
  in
  let config =
    { (Session.default_config ~link:Link.congested ()) with
      Session.initial_bw_bps = Some (Link.effective_bps Link.fast_wifi) }
  in
  let session =
    Session.create ~config ~script:entry.No_workloads.Registry.e_eval_script
      ~files:entry.No_workloads.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Alcotest.(check int) "first invocation fooled by stale belief" 1
    report.Session.rep_offloads;
  Alcotest.(check int) "later invocations refused" 2
    report.Session.rep_refusals;
  (* and the output is still correct *)
  let local =
    Local_run.run ~script:entry.No_workloads.Registry.e_eval_script
      ~files:entry.No_workloads.Registry.e_files compiled.Compiler.c_original
  in
  Alcotest.(check string) "console identical" local.Local_run.lr_console
    report.Session.rep_console

let bandwidth_tests =
  [
    Alcotest.test_case "bandwidth predictor" `Quick test_predictor_unit;
    Alcotest.test_case "session adapts to real bandwidth" `Quick
      test_session_adapts_to_real_bandwidth;
  ]

let tests = tests @ bandwidth_tests
