(* Power model and battery accounting tests. *)

module Power_model = No_power.Power_model
module Battery = No_power.Battery

let model = Power_model.galaxy_s5 ~fast_radio:true

let test_power_levels () =
  (* The levels Section 5.2 reports. *)
  Alcotest.(check (float 1.0)) "idle" 300.0
    (Power_model.draw_mw model Power_model.Idle);
  Alcotest.(check (float 1.0)) "waiting" 1350.0
    (Power_model.draw_mw model Power_model.Waiting);
  Alcotest.(check (float 1.0)) "receiving" 2000.0
    (Power_model.draw_mw model Power_model.Receiving);
  Alcotest.(check bool) "transmit in 2000..5000" true
    (let tx = Power_model.draw_mw model Power_model.Transmitting in
     tx >= 2000.0 && tx <= 5000.0);
  (* the slow radio draws ~1700 mW for remote I/O, the fast ~2000 *)
  let slow = Power_model.galaxy_s5 ~fast_radio:false in
  Alcotest.(check (float 1.0)) "remote io fast" 2000.0
    (Power_model.draw_mw model Power_model.Remote_io_service);
  Alcotest.(check (float 1.0)) "remote io slow" 1700.0
    (Power_model.draw_mw slow Power_model.Remote_io_service)

let test_battery_integration () =
  let b = Battery.create model in
  Battery.spend b ~from_s:0.0 ~to_s:2.0 Power_model.Computing;
  Battery.spend b ~from_s:2.0 ~to_s:3.0 Power_model.Waiting;
  let expected =
    (2.0 *. Power_model.draw_mw model Power_model.Computing) +. 1350.0
  in
  Alcotest.(check (float 0.01)) "energy mJ" expected (Battery.energy_mj b);
  Alcotest.(check int) "two segments" 2 (List.length (Battery.segments b));
  (* zero-length segments are dropped *)
  Battery.spend b ~from_s:3.0 ~to_s:3.0 Power_model.Idle;
  Alcotest.(check int) "still two" 2 (List.length (Battery.segments b));
  (match Battery.spend b ~from_s:5.0 ~to_s:4.0 Power_model.Idle with
  | () -> Alcotest.fail "expected negative duration error"
  | exception Invalid_argument _ -> ())

let test_battery_resample () =
  let b = Battery.create model in
  Battery.spend b ~from_s:0.0 ~to_s:1.0 Power_model.Computing;
  Battery.spend b ~from_s:1.0 ~to_s:2.0 Power_model.Transmitting;
  let samples = Battery.resample b ~period_s:0.5 in
  Alcotest.(check int) "5 samples over 2s" 5 (List.length samples);
  let mw_at t =
    match List.find_opt (fun (time, _) -> abs_float (time -. t) < 1e-9) samples with
    | Some (_, mw) -> mw
    | None -> Alcotest.failf "no sample at %f" t
  in
  Alcotest.(check (float 1.0)) "computing at 0.5"
    (Power_model.draw_mw model Power_model.Computing) (mw_at 0.5);
  Alcotest.(check (float 1.0)) "transmitting at 1.5"
    (Power_model.draw_mw model Power_model.Transmitting) (mw_at 1.5)

let test_time_by_state () =
  let b = Battery.create model in
  Battery.spend b ~from_s:0.0 ~to_s:1.0 Power_model.Computing;
  Battery.spend b ~from_s:1.0 ~to_s:4.0 Power_model.Waiting;
  Battery.spend b ~from_s:4.0 ~to_s:5.0 Power_model.Computing;
  let by_state = Battery.time_by_state b in
  let time state =
    Option.value ~default:0.0 (List.assoc_opt state by_state)
  in
  Alcotest.(check (float 1e-9)) "computing 2s" 2.0
    (time Power_model.Computing);
  Alcotest.(check (float 1e-9)) "waiting 3s" 3.0 (time Power_model.Waiting)

let tests =
  [
    Alcotest.test_case "power levels" `Quick test_power_levels;
    Alcotest.test_case "battery integration" `Quick test_battery_integration;
    Alcotest.test_case "battery resample" `Quick test_battery_resample;
    Alcotest.test_case "time by state" `Quick test_time_by_state;
  ]
