(* Workload suite tests: every one of the 17 SPEC-like programs
   builds, validates, runs on its profiling input, selects the
   expected Table 4 target, and (for a representative cheap subset)
   produces identical output when offloaded. *)

module Ir = No_ir.Ir
module Validate = No_ir.Validate
module Filter = No_analysis.Filter
module Static_estimate = No_estimator.Static_estimate
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Registry = No_workloads.Registry
module Compiler = Native_offloader.Compiler

let compile (entry : Registry.entry) =
  Compiler.compile ~profile_script:entry.Registry.e_profile_script
    ~profile_files:entry.Registry.e_files
    ~eval_scale:entry.Registry.e_eval_scale
    (entry.Registry.e_build ())

(* Each workload gets its own test case so failures name the
   program. *)
let per_workload_case (entry : Registry.entry) =
  Alcotest.test_case entry.Registry.e_name `Quick (fun () ->
      let m = entry.Registry.e_build () in
      Validate.check_module m;
      (* the profiling input runs to completion and prints something *)
      let local =
        Local_run.run ~script:entry.Registry.e_profile_script
          ~files:entry.Registry.e_files m
      in
      Alcotest.(check bool) "produces output" true
        (String.length local.Local_run.lr_console > 0);
      Alcotest.(check bool) "takes time" true (local.Local_run.lr_total_s > 0.0);
      (* compilation selects exactly the paper's targets *)
      let compiled = compile entry in
      Alcotest.(check (slist string String.compare))
        "selected targets"
        entry.Registry.e_expected_targets
        compiled.Compiler.c_selection.Static_estimate.targets;
      (* main is always filtered (it reads the workload parameters) *)
      Alcotest.(check bool) "main filtered" true
        (not (Filter.is_offloadable compiled.Compiler.c_verdicts "main")))

let offload_case name =
  Alcotest.test_case (name ^ " offload correctness") `Quick (fun () ->
      let entry = Option.get (Registry.by_name name) in
      let compiled = compile entry in
      let local =
        Local_run.run ~script:entry.Registry.e_eval_script
          ~files:entry.Registry.e_files compiled.Compiler.c_original
      in
      let session =
        Session.create
          ~config:(Session.default_config ())
          ~script:entry.Registry.e_eval_script ~files:entry.Registry.e_files
          compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
      in
      let report = Session.run session in
      Alcotest.(check string) "console identical" local.Local_run.lr_console
        report.Session.rep_console;
      Alcotest.(check bool) "offloaded" true (report.Session.rep_offloads > 0);
      Alcotest.(check bool) "faster than local" true
        (report.Session.rep_total_s < local.Local_run.lr_total_s))

(* Trait checks on specific programs. *)
let test_gobmk_traits () =
  let entry = Option.get (Registry.by_name "445.gobmk") in
  let compiled = compile entry in
  let stats = compiled.Compiler.c_output.No_transform.Pipeline.o_stats in
  Alcotest.(check bool) "fn ptr maps inserted" true
    (stats.No_transform.Pipeline.st_fnptr_load_maps > 0);
  Alcotest.(check bool) "remote io sites" true
    (stats.No_transform.Pipeline.st_remote_io_sites > 0)

let test_ammp_two_targets () =
  let entry = Option.get (Registry.by_name "188.ammp") in
  let compiled = compile entry in
  Alcotest.(check int) "two targets" 2
    (List.length compiled.Compiler.c_selection.Static_estimate.targets)

let test_sjeng_three_invocations () =
  let entry = Option.get (Registry.by_name "458.sjeng") in
  let compiled = compile entry in
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script:entry.Registry.e_eval_script ~files:entry.Registry.e_files
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Alcotest.(check int) "three offload invocations" 3
    report.Session.rep_offloads;
  Alcotest.(check bool) "fn ptr translations" true
    (report.Session.rep_fnptr_translations > 1000)

let test_twolf_remote_input () =
  let entry = Option.get (Registry.by_name "300.twolf") in
  let compiled = compile entry in
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script:entry.Registry.e_eval_script ~files:entry.Registry.e_files
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Alcotest.(check bool) "remote input ops" true
    (report.Session.rep_remote_io_ops >= 16);
  Alcotest.(check bool) "remote io time visible" true
    (report.Session.rep_remote_io_s > 0.0)

let tests =
  List.map per_workload_case Registry.spec
  @ [
      offload_case "456.hmmer";
      offload_case "175.vpr";
      offload_case "462.libquantum";
      Alcotest.test_case "gobmk traits" `Quick test_gobmk_traits;
      Alcotest.test_case "ammp two targets" `Quick test_ammp_two_targets;
      Alcotest.test_case "sjeng three invocations" `Quick
        test_sjeng_three_invocations;
      Alcotest.test_case "twolf remote input" `Quick test_twolf_remote_input;
    ]
