(* End-to-end interpreter tests: build small programs with the
   builder, validate them, run them on a mobile host, check results,
   console output, clock advancement and memory behaviour. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Validate = No_ir.Validate
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Host = No_exec.Host
module Interp = No_exec.Interp
module Value = No_exec.Value
module Console = No_exec.Console

let structs_of m name = Ir.find_struct_exn m name

let make_host ?(arch = Arch.arm32) ?(script = []) (m : Ir.modul) =
  Validate.check_module m;
  let layout = Layout.env_of_arch arch ~structs:(structs_of m) in
  let host =
    Host.create ~arch ~role:Host.Mobile ~modul:m ~layout
      ~console:(Console.create ~script ()) ()
  in
  host

let run_main_int ?arch ?script m =
  let host = make_host ?arch ?script m in
  Value.to_int (Interp.run_main host)

(* sum of 0..9 via a counted loop *)
let test_loop_sum () =
  let t = B.create "loop_sum" in
  let _f =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        B.for_ fb ~name:"for_i" ~from:(B.i64 0) ~below:(B.i64 10) (fun iv ->
            let cur = B.load fb Ty.I64 acc in
            let next = B.iadd fb cur iv in
            B.store fb Ty.I64 next acc);
        let result = B.load fb Ty.I64 acc in
        B.ret fb (Some result))
  in
  let m = B.finish t in
  Alcotest.(check int64) "sum 0..9" 45L (run_main_int m)

(* recursion: fibonacci *)
let test_fib () =
  let t = B.create "fib" in
  let _ =
    B.func t "fib" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let n = List.nth args 0 in
        let is_small = B.cmp fb Ir.Slt n (B.i64 2) in
        B.if_ fb is_small ~then_:(fun () -> B.ret fb (Some n)) ();
        let a = B.call fb "fib" [ B.isub fb n (B.i64 1) ] in
        let b = B.call fb "fib" [ B.isub fb n (B.i64 2) ] in
        B.ret fb (Some (B.iadd fb a b)))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.ret fb (Some (B.call fb "fib" [ B.i64 12 ])))
  in
  let m = B.finish t in
  Alcotest.(check int64) "fib 12" 144L (run_main_int m)

(* struct field access through GEP, heap allocation *)
let test_struct_heap () =
  let t = B.create "struct_heap" in
  let move_ty =
    B.struct_ t "Move" [ ("from", Ty.I8); ("to", Ty.I8); ("score", Ty.F64) ]
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let raw = B.call fb "malloc" [ B.i64 64 ] in
        let p = B.cast fb Ir.Bitcast ~src:(Ty.Ptr Ty.I8) raw ~dst:(Ty.Ptr move_ty) in
        let score_addr = B.gep fb move_ty p [ Ir.Field "score" ] in
        B.store fb Ty.F64 (B.f64 2.5) score_addr;
        let from_addr = B.gep fb move_ty p [ Ir.Field "from" ] in
        B.store fb Ty.I8 (B.i8 7) from_addr;
        let score = B.load fb Ty.F64 score_addr in
        let doubled = B.fmul fb score (B.f64 2.0) in
        let as_int = B.cast fb Ir.Fp_to_si ~src:Ty.F64 doubled ~dst:Ty.I64 in
        let from = B.load fb Ty.I8 from_addr in
        let from64 = B.cast fb Ir.Sext ~src:Ty.I8 from ~dst:Ty.I64 in
        B.effect fb (Ir.Call ("free", [ raw ]));
        B.ret fb (Some (B.iadd fb as_int from64)))
  in
  let m = B.finish t in
  Alcotest.(check int64) "5 + 7" 12L (run_main_int m)

(* global variables with initializers *)
let test_globals () =
  let t = B.create "globals" in
  B.global t "counter" Ty.I64 (Ir.Int_init (40L, Ty.I64));
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let v = B.load fb Ty.I64 (Ir.Global "counter") in
        let v2 = B.iadd fb v (B.i64 2) in
        B.store fb Ty.I64 v2 (Ir.Global "counter");
        B.ret fb (Some (B.load fb Ty.I64 (Ir.Global "counter"))))
  in
  let m = B.finish t in
  Alcotest.(check int64) "global rmw" 42L (run_main_int m)

(* console I/O: scripted input, captured output *)
let test_console_io () =
  let t = B.create "console" in
  let hello = B.cstr t "answer=" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let a = B.call fb "scan_i64" [] in
        let b = B.call fb "scan_i64" [] in
        let sum = B.iadd fb a b in
        B.call_void fb "print_str" [ hello ];
        B.call_void fb "print_i64" [ sum ];
        B.call_void fb "print_newline" [];
        B.ret fb (Some sum))
  in
  let m = B.finish t in
  let host =
    make_host ~script:[ Console.In_int 19L; Console.In_int 23L ] m
  in
  let result = Value.to_int (Interp.run_main host) in
  Alcotest.(check int64) "sum" 42L result;
  Alcotest.(check string) "output" "answer=42\n"
    (Console.contents host.Host.console)

(* indirect calls through a function-pointer table global *)
let test_fn_ptr_table () =
  let t = B.create "fnptr" in
  let sg = Ty.signature [ Ty.I64 ] Ty.I64 in
  let fp = Ty.Fn_ptr sg in
  B.global t "handlers" (Ty.Array (fp, 2))
    (Ir.Array_init [ Ir.Fn_init "double_it"; Ir.Fn_init "square_it" ]);
  let _ =
    B.func t "double_it" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        B.ret fb (Some (B.imul fb (List.nth args 0) (B.i64 2))))
  in
  let _ =
    B.func t "square_it" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let x = List.nth args 0 in
        B.ret fb (Some (B.imul fb x x)))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let table = Ty.Array (fp, 2) in
        let slot1 =
          B.gep fb table (Ir.Global "handlers") [ Ir.Index (B.i64 1) ]
        in
        let f = B.load fb fp slot1 in
        let squared = B.call_ind fb sg f [ B.i64 6 ] in
        B.ret fb (Some squared))
  in
  let m = B.finish t in
  Alcotest.(check int64) "square via table" 36L (run_main_int m)

(* clock advances; mobile is slower than server on the same program *)
let test_clock_and_ratio () =
  let build () =
    let t = B.create "spin" in
    let _ =
      B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
          let acc = B.alloca fb Ty.I64 1 in
          B.store fb Ty.I64 (B.i64 0) acc;
          B.for_ fb ~name:"spin" ~from:(B.i64 0) ~below:(B.i64 1000)
            (fun iv ->
              let cur = B.load fb Ty.I64 acc in
              B.store fb Ty.I64 (B.iadd fb cur iv) acc);
          B.ret fb (Some (B.load fb Ty.I64 acc)))
    in
    B.finish t
  in
  let time_on arch =
    let host = make_host ~arch (build ()) in
    ignore (Interp.run_main host);
    host.Host.clock.Host.now
  in
  let tm = time_on Arch.arm32 and ts = time_on Arch.x86_64 in
  Alcotest.(check bool) "mobile time positive" true (tm > 0.0);
  let ratio = tm /. ts in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [3,9]" ratio)
    true
    (ratio > 3.0 && ratio < 9.0)

(* traps *)
let test_traps () =
  let div_zero () =
    let t = B.create "divz" in
    let _ =
      B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
          let zero_reg = B.iadd fb (B.i64 0) (B.i64 0) in
          B.ret fb (Some (B.idiv fb (B.i64 1) zero_reg)))
    in
    B.finish t
  in
  (match Interp.run_main (make_host (div_zero ())) with
  | _ -> Alcotest.fail "expected div-by-zero trap"
  | exception Interp.Trap _ -> ());
  let null_deref () =
    let t = B.create "nullderef" in
    let _ =
      B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
          let p =
            B.cast fb Ir.Int_to_ptr ~src:Ty.I64 (B.i64 8) ~dst:(Ty.Ptr Ty.I64)
          in
          B.ret fb (Some (B.load fb Ty.I64 p)))
    in
    B.finish t
  in
  match Interp.run_main (make_host (null_deref ())) with
  | _ -> Alcotest.fail "expected null-deref trap"
  | exception No_mem.Memory.Bad_access (addr, _) ->
    Alcotest.(check bool) "fault in null guard" true (addr < 0x1_0000)

let tests =
  [
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "fibonacci recursion" `Quick test_fib;
    Alcotest.test_case "struct + heap" `Quick test_struct_heap;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "console io" `Quick test_console_io;
    Alcotest.test_case "fn ptr table" `Quick test_fn_ptr_table;
    Alcotest.test_case "clock and ratio" `Quick test_clock_and_ratio;
    Alcotest.test_case "traps" `Quick test_traps;
  ]
