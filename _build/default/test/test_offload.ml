(* End-to-end offloading tests on the paper's chess example: compile
   (profile -> filter -> Eq.1 selection -> unification -> partition ->
   server optimizations), then run local vs offloaded sessions and
   check identical observable behaviour, speedup, and the paper's
   selection/filter outcomes. *)

module Ir = No_ir.Ir
module Arch = No_arch.Arch
module Filter = No_analysis.Filter
module Profiler = No_profiler.Profiler
module Static_estimate = No_estimator.Static_estimate
module Link = No_netsim.Link
module Session = No_runtime.Session
module Local_run = No_runtime.Local_run
module Chess = No_workloads.Chess
module Compiler = Native_offloader.Compiler
module Pipeline = No_transform.Pipeline

let compile_chess () =
  Compiler.compile
    ~profile_script:(Chess.script ~depth:3 ~turns:2)
    ~eval_scale:2.0 (Chess.build ())

let eval_script = Chess.script ~depth:6 ~turns:3

let test_selection () =
  let compiled = compile_chess () in
  Alcotest.(check (list string))
    "selected target" [ "getAITurn" ]
    compiled.Compiler.c_selection.Static_estimate.targets;
  (* getPlayerTurn and its callers are machine specific. *)
  let specific name =
    not (Filter.is_offloadable compiled.Compiler.c_verdicts name)
  in
  Alcotest.(check bool) "getPlayerTurn filtered" true (specific "getPlayerTurn");
  Alcotest.(check bool) "runGame filtered" true (specific "runGame");
  Alcotest.(check bool) "main filtered" true (specific "main");
  Alcotest.(check bool) "getAITurn offloadable" false (specific "getAITurn");
  Alcotest.(check bool) "evalPawn offloadable" false (specific "evalPawn")

let test_loop_profile () =
  let compiled = compile_chess () in
  let samples = compiled.Compiler.c_samples in
  let loop name =
    match Profiler.find_sample samples ~kind:Profiler.Loop ~name with
    | Some s -> s
    | None -> Alcotest.failf "loop %s not profiled" name
  in
  let for_i = loop "for_i" and for_j = loop "for_j" in
  (* for_i entered once per getAITurn call (2 turns); for_j once per
     examined position: widths 1+2+4 per turn at depth 3. *)
  Alcotest.(check int) "for_i invocations" 2 for_i.Profiler.s_invocations;
  Alcotest.(check int) "for_j invocations" 14 for_j.Profiler.s_invocations;
  Alcotest.(check bool) "for_i time >= for_j time" true
    (for_i.Profiler.s_time >= for_j.Profiler.s_time);
  Alcotest.(check bool) "for_i time positive" true (for_i.Profiler.s_time > 0.0)

let test_server_partition_shape () =
  let compiled = compile_chess () in
  let server = compiled.Compiler.c_output.Pipeline.o_server in
  (* Unused-function removal: the interactive path is gone. *)
  Alcotest.(check bool) "getPlayerTurn removed" true
    (Ir.find_func server "getPlayerTurn" = None);
  Alcotest.(check bool) "runGame removed" true
    (Ir.find_func server "runGame" = None);
  Alcotest.(check bool) "main removed" true (Ir.find_func server "main" = None);
  Alcotest.(check bool) "listener present" true
    (Ir.find_func server "__listen_client" <> None);
  Alcotest.(check bool) "serve stub present" true
    (Ir.find_func server "__serve$getAITurn" <> None);
  Alcotest.(check bool) "target present" true
    (Ir.find_func server "getAITurn" <> None);
  Alcotest.(check bool) "eval fns kept (address taken)" true
    (Ir.find_func server "evalQueen" <> None);
  let stats = compiled.Compiler.c_output.Pipeline.o_stats in
  Alcotest.(check bool) "remote io rewritten" true
    (stats.Pipeline.st_remote_io_sites >= 2);
  Alcotest.(check bool) "fn ptr loads mapped" true
    (stats.Pipeline.st_fnptr_load_maps >= 1);
  Alcotest.(check bool) "pointer loads converted (32->64)" true
    (stats.Pipeline.st_addr_loads >= 1);
  Alcotest.(check int) "no endianness swaps (both LE)" 0
    stats.Pipeline.st_endian_swaps;
  Alcotest.(check bool) "globals reallocated" true
    (stats.Pipeline.st_reallocated_globals >= 3)

let run_offloaded ?(config = Session.default_config ()) compiled =
  let session =
    Session.create ~config ~script:eval_script compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  Session.run session

let test_offload_correctness () =
  let compiled = compile_chess () in
  let local = Local_run.run ~script:eval_script compiled.Compiler.c_original in
  let report = run_offloaded compiled in
  Alcotest.(check string)
    "console output identical" local.Local_run.lr_console
    report.Session.rep_console;
  Alcotest.(check bool) "offloads happened" true
    (report.Session.rep_offloads = 3);
  Alcotest.(check bool) "fn ptr translations happened" true
    (report.Session.rep_fnptr_translations > 100);
  Alcotest.(check bool) "remote io happened" true
    (report.Session.rep_remote_io_ops >= 18);
  Alcotest.(check bool) "page faults or prefetch moved data" true
    (report.Session.rep_faults + report.Session.rep_prefetched_pages > 0)

let test_offload_speedup () =
  let compiled = compile_chess () in
  let local = Local_run.run ~script:eval_script compiled.Compiler.c_original in
  let report = run_offloaded compiled in
  let speedup = local.Local_run.lr_total_s /. report.Session.rep_total_s in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f > 1.5" speedup)
    true (speedup > 1.5);
  Alcotest.(check bool) "battery saved" true
    (report.Session.rep_energy_mj < local.Local_run.lr_energy_mj)

let test_never_offload_matches_local () =
  let compiled = compile_chess () in
  let local = Local_run.run ~script:eval_script compiled.Compiler.c_original in
  let config =
    { (Session.default_config ()) with Session.decision = Session.Never_offload }
  in
  let report = run_offloaded ~config compiled in
  Alcotest.(check string) "console identical" local.Local_run.lr_console
    report.Session.rep_console;
  Alcotest.(check int) "no offloads" 0 report.Session.rep_offloads;
  (* The partitioned binary running locally costs about the same as
     the original (dispatch overhead is tiny). *)
  let overhead =
    report.Session.rep_total_s /. local.Local_run.lr_total_s
  in
  Alcotest.(check bool)
    (Printf.sprintf "local overhead %.3f < 1.2" overhead)
    true (overhead < 1.2)

let test_congested_network_refuses () =
  let compiled = compile_chess () in
  let config =
    { (Session.default_config ~link:Link.congested ()) with
      Session.prefetch = true }
  in
  let report = run_offloaded ~config compiled in
  (* The dynamic estimator must notice the terrible network.  Chess
     moves little data, so allow either outcome but require that a
     refusal happens for a genuinely huge footprint: force one. *)
  ignore report;
  let compiled2 = compile_chess () in
  let session =
    Session.create ~config ~script:eval_script compiled2.Compiler.c_output
      ~seeds:
        (List.map
           (fun s -> { s with Session.seed_mem_bytes = 512 * 1024 * 1024 })
           compiled2.Compiler.c_seeds)
  in
  let report2 = Session.run session in
  Alcotest.(check int) "all refused" 0 report2.Session.rep_offloads;
  Alcotest.(check bool) "refusals recorded" true
    (report2.Session.rep_refusals > 0)

let test_ideal_faster_than_real () =
  let compiled = compile_chess () in
  let real = run_offloaded compiled in
  let config = { (Session.default_config ()) with Session.ideal = true } in
  let ideal = run_offloaded ~config compiled in
  Alcotest.(check bool) "ideal <= real" true
    (ideal.Session.rep_total_s <= real.Session.rep_total_s);
  Alcotest.(check bool) "real has comm overhead" true
    (real.Session.rep_comm_s > 0.0);
  Alcotest.(check bool) "ideal has zero comm" true
    (ideal.Session.rep_comm_s = 0.0)

let tests =
  [
    Alcotest.test_case "target selection" `Quick test_selection;
    Alcotest.test_case "loop profiling" `Quick test_loop_profile;
    Alcotest.test_case "server partition shape" `Quick
      test_server_partition_shape;
    Alcotest.test_case "offload correctness" `Quick test_offload_correctness;
    Alcotest.test_case "offload speedup" `Quick test_offload_speedup;
    Alcotest.test_case "never-offload matches local" `Quick
      test_never_offload_matches_local;
    Alcotest.test_case "congested network refuses" `Quick
      test_congested_network_refuses;
    Alcotest.test_case "ideal faster than real" `Quick
      test_ideal_faster_than_real;
  ]
