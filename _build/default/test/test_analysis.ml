(* Analysis tests: call graph, dominators, natural loops, the
   machine-specific filter (with call-graph propagation), and
   unused-function removal. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Callgraph = No_analysis.Callgraph
module Dominators = No_analysis.Dominators
module Loops = No_analysis.Loops
module Filter = No_analysis.Filter
module Reachability = No_analysis.Reachability

(* A module exercising the analyses:
     main -> alpha -> beta -> gamma(asm)
     main -> delta (address taken via global table)
     epsilon (calls scan: interactive)
     zeta (dead) *)
let build_test_module () =
  let t = B.create "analysis" in
  let sg = Ty.signature [] Ty.I64 in
  B.global t "table" (Ty.Fn_ptr sg) (Ir.Fn_init "delta");
  let leaf name body =
    ignore (B.func t name ~params:[] ~ret:Ty.I64 (fun fb _ -> body fb))
  in
  leaf "gamma" (fun fb ->
      B.asm fb "mrs r0, cpsr";
      B.ret fb (Some (B.i64 1)));
  leaf "beta" (fun fb -> B.ret fb (Some (B.call fb "gamma" [])));
  leaf "alpha" (fun fb -> B.ret fb (Some (B.call fb "beta" [])));
  leaf "delta" (fun fb -> B.ret fb (Some (B.i64 7)));
  leaf "epsilon" (fun fb -> B.ret fb (Some (B.call fb "scan_i64" [])));
  leaf "zeta" (fun fb -> B.ret fb (Some (B.i64 0)));
  leaf "eta" (fun fb ->
      let f = B.load fb (Ty.Fn_ptr sg) (Ir.Global "table") in
      B.ret fb (Some (B.call_ind fb sg f [])));
  leaf "main" (fun fb ->
      let a = B.call fb "alpha" [] in
      let b = B.call fb "eta" [] in
      B.ret fb (Some (B.iadd fb a b)));
  B.finish t

let test_callgraph () =
  let m = build_test_module () in
  let cg = Callgraph.build m in
  let set_to_list s = Callgraph.String_set.elements s in
  Alcotest.(check (list string)) "main callees" [ "alpha"; "eta" ]
    (set_to_list (Callgraph.callees_of cg "main"));
  Alcotest.(check (list string)) "beta callers" [ "alpha" ]
    (set_to_list (Callgraph.callers_of cg "beta"));
  Alcotest.(check bool) "delta address taken" true
    (Callgraph.is_address_taken cg "delta");
  Alcotest.(check bool) "eta has indirect" true
    (Callgraph.has_indirect_call cg "eta");
  let reachable = Callgraph.transitive_callees cg [ "main" ] in
  Alcotest.(check bool) "gamma reachable" true
    (Callgraph.String_set.mem "gamma" reachable);
  Alcotest.(check bool) "delta reachable via fn ptr" true
    (Callgraph.String_set.mem "delta" reachable);
  Alcotest.(check bool) "zeta unreachable" false
    (Callgraph.String_set.mem "zeta" reachable)

(* Diamond CFG for dominators; nested loops for loop detection. *)
let build_cfg_func () =
  let t = B.create "cfg" in
  let f =
    B.func t "diamond" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let x = List.nth args 0 in
        let c = B.cmp fb Ir.Sgt x (B.i64 0) in
        B.if_ fb c
          ~then_:(fun () -> B.effect fb (Ir.Call ("print_newline", [])))
          ~else_:(fun () -> ())
          ();
        B.for_ fb ~name:"outer" ~from:(B.i64 0) ~below:x (fun _ ->
            B.for_ fb ~name:"inner" ~from:(B.i64 0) ~below:x (fun _ -> ()));
        B.ret fb (Some x))
  in
  f

let test_dominators () =
  let f = build_cfg_func () in
  let doms = Dominators.compute f in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all
       (fun (b : Ir.block) ->
         Dominators.dominates doms ~dom:"entry" ~sub:b.Ir.label)
       f.Ir.f_blocks);
  Alcotest.(check bool) "then does not dominate join" false
    (Dominators.dominates doms ~dom:"if.then.0" ~sub:"if.end.2");
  Alcotest.(check bool) "outer header dominates inner" true
    (Dominators.dominates doms ~dom:"outer.cond" ~sub:"inner.cond")

let test_loops () =
  let f = build_cfg_func () in
  let loops = Loops.loops_of_func f in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let find name =
    List.find (fun (l : Loops.loop) -> String.equal l.Loops.l_name name) loops
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer depth" 1 outer.Loops.l_depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.l_depth;
  Alcotest.(check bool) "inner body inside outer" true
    (Loops.String_set.subset inner.Loops.l_blocks outer.Loops.l_blocks)

let test_filter () =
  let m = build_test_module () in
  let verdicts = Filter.analyze m in
  let reason name =
    match Filter.verdict_of verdicts name with
    | Some v -> v.Filter.v_machine_specific
    | None -> Alcotest.failf "no verdict for %s" name
  in
  (match reason "gamma" with
  | Some Filter.Has_asm -> ()
  | other ->
    Alcotest.failf "gamma: expected asm, got %s"
      (match other with
      | Some r -> Filter.reason_to_string r
      | None -> "offloadable"));
  (* propagation up the call graph *)
  (match reason "beta" with
  | Some (Filter.Calls_machine_specific "gamma") -> ()
  | _ -> Alcotest.fail "beta should inherit gamma's verdict");
  Alcotest.(check bool) "alpha specific" true
    (not (Filter.is_offloadable verdicts "alpha"));
  (match reason "epsilon" with
  | Some (Filter.Has_interactive_input "scan_i64") -> ()
  | _ -> Alcotest.fail "epsilon: interactive input");
  Alcotest.(check bool) "delta offloadable" true
    (Filter.is_offloadable verdicts "delta");
  Alcotest.(check bool) "eta offloadable (fn ptr ok)" true
    (Filter.is_offloadable verdicts "eta")

let test_filter_io_not_specific () =
  let t = B.create "io" in
  let _ =
    B.func t "printer" ~params:[] ~ret:Ty.Void (fun fb _ ->
        B.call_void fb "print_i64" [ B.i64 1 ];
        B.ret_void fb)
  in
  let _ =
    B.func t "reader" ~params:[] ~ret:Ty.Void (fun fb _ ->
        let buf = B.alloca fb Ty.I8 64 in
        let fd = B.call fb "f_open" [ buf ] in
        B.effect fb (Ir.Call ("f_read", [ fd; buf; B.i64 16 ]));
        B.call_void fb "f_close" [ fd ];
        B.ret_void fb)
  in
  let m = B.finish t in
  let verdicts = Filter.analyze m in
  Alcotest.(check bool) "output io offloadable" true
    (Filter.is_offloadable verdicts "printer");
  Alcotest.(check bool) "file io offloadable" true
    (Filter.is_offloadable verdicts "reader");
  let v = Option.get (Filter.verdict_of verdicts "printer") in
  Alcotest.(check bool) "output io recorded" true
    (not (Filter.String_set.is_empty v.Filter.v_output_io))

let test_unused_removal () =
  let m = build_test_module () in
  let trimmed, removed = Reachability.remove_unused m ~roots:[ "alpha" ] in
  Alcotest.(check bool) "zeta removed" true (List.mem "zeta" removed);
  Alcotest.(check bool) "main removed" true (List.mem "main" removed);
  Alcotest.(check bool) "beta kept" true
    (Ir.find_func trimmed "beta" <> None);
  (* address-taken functions survive only if an indirect call remains *)
  Alcotest.(check bool) "delta dropped without indirect callers" true
    (List.mem "delta" removed);
  let trimmed2, _ = Reachability.remove_unused m ~roots:[ "eta" ] in
  Alcotest.(check bool) "delta kept under eta" true
    (Ir.find_func trimmed2 "delta" <> None)

let tests =
  [
    Alcotest.test_case "callgraph" `Quick test_callgraph;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "natural loops" `Quick test_loops;
    Alcotest.test_case "machine-specific filter" `Quick test_filter;
    Alcotest.test_case "io is not machine specific" `Quick
      test_filter_io_not_specific;
    Alcotest.test_case "unused function removal" `Quick test_unused_removal;
  ]
