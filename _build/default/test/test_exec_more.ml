(* Additional interpreter coverage: file I/O builtins, bulk memory
   builtins, switch dispatch, unsigned arithmetic, select, casts, and
   the fuel limiter. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Validate = No_ir.Validate
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Host = No_exec.Host
module Interp = No_exec.Interp
module Value = No_exec.Value
module Console = No_exec.Console
module Fs = No_exec.Fs

let make_host ?(script = []) ?(files = []) (m : Ir.modul) =
  Validate.check_module m;
  let layout =
    Layout.env_of_arch Arch.arm32 ~structs:(Ir.find_struct_exn m)
  in
  let fs = Fs.create () in
  List.iter (fun (name, data) -> Fs.add_file fs name data) files;
  Host.create ~arch:Arch.arm32 ~role:Host.Mobile ~modul:m ~layout
    ~console:(Console.create ~script ()) ~fs ()

let run ?script ?files m =
  Value.to_int (Interp.run_main (make_host ?script ?files m))

let test_file_io () =
  let t = B.create "fileio" in
  let path = B.cstr t "input.dat" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let fd = B.call fb "f_open" [ path ] in
        let size = B.call fb "f_size" [ fd ] in
        let buf = B.call fb "malloc" [ size ] in
        let got = B.call fb "f_read" [ fd; buf; size ] in
        B.call_void fb "f_close" [ fd ];
        (* sum the bytes *)
        let buf8 = buf in
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        B.for_ fb ~name:"sum" ~from:(B.i64 0) ~below:got (fun i ->
            let b = B.load fb Ty.I8 (B.gep fb Ty.I8 buf8 [ Ir.Index i ]) in
            let b64 = B.cast fb Ir.Sext ~src:Ty.I8 b ~dst:Ty.I64 in
            let cur = B.load fb Ty.I64 acc in
            B.store fb Ty.I64 (B.iadd fb cur (B.iand fb b64 (B.i64 255))) acc);
        B.ret fb (Some (B.load fb Ty.I64 acc)))
  in
  let m = B.finish t in
  let data = Bytes.of_string "\x01\x02\x03\x04" in
  Alcotest.(check int64) "sum of bytes" 10L
    (run ~files:[ ("input.dat", data) ] m);
  (* missing file traps via Fs exception *)
  match run ~files:[] m with
  | _ -> Alcotest.fail "expected missing-file failure"
  | exception Fs.No_such_file "input.dat" -> ()

let test_memcpy_memset () =
  let t = B.create "bulk" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let a = B.call fb "malloc" [ B.i64 64 ] in
        let b = B.call fb "malloc" [ B.i64 64 ] in
        B.call_void fb "memset" [ a; B.i64 7; B.i64 64 ];
        B.call_void fb "memcpy" [ b; a; B.i64 64 ] ;
        let v = B.load fb Ty.I8 (B.gep fb Ty.I8 b [ Ir.Index (B.i64 63) ]) in
        B.ret fb (Some (B.cast fb Ir.Sext ~src:Ty.I8 v ~dst:Ty.I64)))
  in
  Alcotest.(check int64) "memset+memcpy" 7L (run (B.finish t))

let test_switch () =
  let t = B.create "switch" in
  let _ =
    B.func t "classify" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let x = List.nth args 0 in
        B.switch fb x [ (1L, "one"); (2L, "two") ] "other";
        B.open_block fb "one";
        B.ret fb (Some (B.i64 100));
        B.open_block fb "two";
        B.ret fb (Some (B.i64 200));
        B.open_block fb "other";
        B.ret fb (Some (B.i64 999)))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let a = B.call fb "classify" [ B.i64 1 ] in
        let b = B.call fb "classify" [ B.i64 2 ] in
        let c = B.call fb "classify" [ B.i64 5 ] in
        B.ret fb (Some (B.iadd fb a (B.iadd fb b c))))
  in
  Alcotest.(check int64) "switch" 1299L (run (B.finish t))

let test_unsigned_and_select () =
  let t = B.create "unsigned" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        (* -1 as unsigned is huge: udiv by 2 gives 2^63 - 1 *)
        let neg = B.i64 (-1) in
        let udiv = B.bin fb Ir.Udiv neg (B.i64 2) in
        let expect = B.i64' 0x7FFFFFFFFFFFFFFFL in
        let ok1 = B.cmp fb Ir.Eq udiv expect in
        (* unsigned compare: -1 > 1 unsigned *)
        let ok2 = B.cmp fb Ir.Ugt neg (B.i64 1) in
        (* signed compare: -1 < 1 *)
        let ok3 = B.cmp fb Ir.Slt neg (B.i64 1) in
        let both = B.iand fb ok1 (B.iand fb ok2 ok3) in
        let r = B.select fb both (B.i64 42) (B.i64 0) in
        B.ret fb (Some r))
  in
  Alcotest.(check int64) "unsigned semantics" 42L (run (B.finish t))

let test_casts () =
  let t = B.create "casts" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        (* trunc 0x1FF to i8 = -1 (sign-extended canonical) *)
        let t8 = B.cast fb Ir.Trunc ~src:Ty.I64 (B.i64 0x1FF) ~dst:Ty.I8 in
        let sext = B.cast fb Ir.Sext ~src:Ty.I8 t8 ~dst:Ty.I64 in
        (* zext of the same i8 = 255 *)
        let zext = B.cast fb Ir.Zext ~src:Ty.I8 t8 ~dst:Ty.I64 in
        (* fp roundtrip *)
        let f = B.cast fb Ir.Si_to_fp ~src:Ty.I64 (B.i64 40) ~dst:Ty.F64 in
        let i = B.cast fb Ir.Fp_to_si ~src:Ty.F64 f ~dst:Ty.I64 in
        (* (-1) + 255 + 40 = 294 *)
        B.ret fb (Some (B.iadd fb sext (B.iadd fb zext i))))
  in
  Alcotest.(check int64) "cast semantics" 294L (run (B.finish t))

let test_fuel_limit () =
  let t = B.create "spin" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.while_ fb ~name:"forever" ~cond:(fun () -> B.i8 1)
          ~body:(fun () -> ())
          ();
        B.ret fb (Some (B.i64 0)))
  in
  let host = make_host (B.finish t) in
  host.Host.fuel <- 10_000;
  match Interp.run_main host with
  | _ -> Alcotest.fail "expected fuel exhaustion"
  | exception Interp.Out_of_fuel -> ()

let test_asm_is_local_noop () =
  let t = B.create "asm" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.asm fb "dmb ish";
        B.ret fb (Some (B.i64 1)))
  in
  Alcotest.(check int64) "asm no-op" 1L (run (B.finish t))

let test_math_builtins () =
  let t = B.create "math" in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let s = B.call fb "sqrt" [ B.f64 16.0 ] in
        let p = B.call fb "pow" [ B.f64 2.0; B.f64 10.0 ] in
        let total = B.fadd fb s p in
        B.ret fb (Some (B.cast fb Ir.Fp_to_si ~src:Ty.F64 total ~dst:Ty.I64)))
  in
  Alcotest.(check int64) "sqrt+pow" 1028L (run (B.finish t))

let tests =
  [
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "memcpy/memset" `Quick test_memcpy_memset;
    Alcotest.test_case "switch" `Quick test_switch;
    Alcotest.test_case "unsigned + select" `Quick test_unsigned_and_select;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "asm local no-op" `Quick test_asm_is_local_noop;
    Alcotest.test_case "math builtins" `Quick test_math_builtins;
  ]
