test/test_mem.ml: Alcotest Bytes Char Int64 List No_arch No_mem QCheck QCheck_alcotest
