test/test_power.ml: Alcotest List No_power Option
