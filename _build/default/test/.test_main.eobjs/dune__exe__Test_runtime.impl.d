test/test_runtime.ml: Alcotest List Native_offloader No_arch No_estimator No_ir No_netsim No_power No_runtime No_transform No_workloads Option Printf
