test/test_analysis.ml: Alcotest List No_analysis No_ir Option String
