test/test_profiler.ml: Alcotest List No_arch No_exec No_ir No_profiler Printf
