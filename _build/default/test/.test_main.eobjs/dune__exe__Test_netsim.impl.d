test/test_netsim.ml: Alcotest Bytes Char Gen List No_netsim Printf QCheck QCheck_alcotest String
