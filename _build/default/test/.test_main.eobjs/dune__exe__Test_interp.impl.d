test/test_interp.ml: Alcotest List No_arch No_exec No_ir No_mem Printf
