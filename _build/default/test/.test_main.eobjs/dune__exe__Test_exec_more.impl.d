test/test_exec_more.ml: Alcotest Bytes List No_arch No_exec No_ir
