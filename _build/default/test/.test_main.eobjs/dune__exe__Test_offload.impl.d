test/test_offload.ml: Alcotest List Native_offloader No_analysis No_arch No_estimator No_ir No_netsim No_profiler No_runtime No_transform No_workloads Printf
