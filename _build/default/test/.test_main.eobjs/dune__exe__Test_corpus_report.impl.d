test/test_corpus_report.ml: Alcotest Int List No_corpus No_report String
