test/test_ir.ml: Alcotest List No_ir String
