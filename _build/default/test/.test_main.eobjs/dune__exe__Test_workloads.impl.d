test/test_workloads.ml: Alcotest List Native_offloader No_analysis No_estimator No_ir No_runtime No_transform No_workloads Option String
