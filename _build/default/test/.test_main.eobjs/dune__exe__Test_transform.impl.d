test/test_transform.ml: Alcotest Int64 List No_arch No_exec No_ir No_mem No_runtime No_transform No_workloads String
