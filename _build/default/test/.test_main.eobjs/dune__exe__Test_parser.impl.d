test/test_parser.ml: Alcotest List No_ir No_workloads String
