test/test_layout.ml: Alcotest List No_arch No_ir Printf
