test/test_estimator.ml: Alcotest No_analysis No_estimator No_ir No_profiler
