(* Direct profiler tests on a program with known counts: function
   invocations, loop invocations vs iterations, inclusive times,
   per-task memory footprints, and recursion handling. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Arch = No_arch.Arch
module Layout = No_arch.Layout
module Host = No_exec.Host
module Interp = No_exec.Interp
module Profiler = No_profiler.Profiler

let build () =
  let t = B.create "profiled" in
  let _ =
    B.func t "leaf" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let n = List.nth args 0 in
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        B.for_ fb ~name:"leaf_loop" ~from:(B.i64 0) ~below:(B.i64 10)
          (fun iv ->
            let c = B.load fb Ty.I64 acc in
            B.store fb Ty.I64 (B.iadd fb c iv) acc);
        B.ret fb (Some (B.iadd fb n (B.load fb Ty.I64 acc))))
  in
  let _ =
    B.func t "toucher" ~params:[] ~ret:Ty.Void (fun fb _ ->
        (* touch 4 pages of heap *)
        let buf = B.call fb "malloc" [ B.i64 (4 * 4096) ] in
        B.for_ fb ~name:"touch_loop" ~from:(B.i64 0) ~below:(B.i64 4)
          (fun i ->
            let off = B.imul fb i (B.i64 4096) in
            let p = B.gep fb Ty.I8 buf [ Ir.Index off ] in
            B.store fb Ty.I8 (B.i8 1) p);
        B.ret_void fb)
  in
  let _ =
    B.func t "rec" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let n = List.nth args 0 in
        let base = B.cmp fb Ir.Sle n (B.i64 0) in
        B.if_ fb base ~then_:(fun () -> B.ret fb (Some (B.i64 0))) ();
        let r = B.call fb "rec" [ B.isub fb n (B.i64 1) ] in
        B.ret fb (Some (B.iadd fb r (B.i64 1))))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        B.for_ fb ~name:"main_loop" ~from:(B.i64 0) ~below:(B.i64 3)
          (fun iv -> B.effect fb (Ir.Call ("leaf", [ iv ])));
        B.call_void fb "toucher" [];
        B.effect fb (Ir.Call ("rec", [ B.i64 5 ]));
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

let profile () =
  let m = build () in
  let layout = Layout.env_of_arch Arch.arm32 ~structs:(Ir.find_struct_exn m) in
  let host = Host.create ~arch:Arch.arm32 ~role:Host.Mobile ~modul:m ~layout () in
  let profiler = Profiler.attach host in
  ignore (Interp.run_main host);
  Profiler.detach profiler;
  Profiler.results profiler

let sample samples kind name =
  match Profiler.find_sample samples ~kind ~name with
  | Some s -> s
  | None -> Alcotest.failf "no sample for %s" name

let test_counts () =
  let samples = profile () in
  let leaf = sample samples Profiler.Func "leaf" in
  Alcotest.(check int) "leaf invocations" 3 leaf.Profiler.s_invocations;
  let loop = sample samples Profiler.Loop "leaf_loop" in
  Alcotest.(check int) "loop invocations" 3 loop.Profiler.s_invocations;
  Alcotest.(check int) "loop iterations" 33 loop.Profiler.s_iterations
  (* 3 invocations x (10 body entries + 1 exit check) per the header-
     entry counting convention *)

let test_inclusive_times () =
  let samples = profile () in
  let main = sample samples Profiler.Func "main" in
  let leaf = sample samples Profiler.Func "leaf" in
  let toucher = sample samples Profiler.Func "toucher" in
  Alcotest.(check bool) "main includes leaf" true
    (main.Profiler.s_time >= leaf.Profiler.s_time);
  Alcotest.(check bool) "main includes toucher" true
    (main.Profiler.s_time >= toucher.Profiler.s_time);
  Alcotest.(check bool) "times positive" true (leaf.Profiler.s_time > 0.0)

let test_memory_footprint () =
  let samples = profile () in
  let toucher = sample samples Profiler.Func "toucher" in
  (* 4 heap pages + a stack page or two *)
  Alcotest.(check bool)
    (Printf.sprintf "toucher footprint %d in [4,8] pages"
       (toucher.Profiler.s_mem_bytes / 4096))
    true
    (toucher.Profiler.s_mem_bytes >= 4 * 4096
    && toucher.Profiler.s_mem_bytes <= 8 * 4096)

let test_recursion () =
  let samples = profile () in
  let rec_s = sample samples Profiler.Func "rec" in
  (* every activation counts as an invocation; time only for the
     outermost (no double counting) *)
  Alcotest.(check int) "rec invocations" 6 rec_s.Profiler.s_invocations;
  let main = sample samples Profiler.Func "main" in
  Alcotest.(check bool) "rec time <= main time" true
    (rec_s.Profiler.s_time <= main.Profiler.s_time)

let tests =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "inclusive times" `Quick test_inclusive_times;
    Alcotest.test_case "memory footprint" `Quick test_memory_footprint;
    Alcotest.test_case "recursion" `Quick test_recursion;
  ]
