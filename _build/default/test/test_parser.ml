(* IR parser tests: hand-written sources, error reporting, and the
   pretty-printer round trip over every workload module — parsing the
   printed form of a module must reproduce a module that validates and
   prints identically. *)

module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Parser = No_ir.Parser
module Pretty = No_ir.Pretty
module Validate = No_ir.Validate
module Registry = No_workloads.Registry

let test_parse_minimal () =
  let src =
    {|
# a comment
module tiny
struct %Pair { a: i8; b: f64 }
global @answer : i64 = 42:i64
global @table : [2 x i64(i64)*] = {&double_it, &double_it}
fn double_it(%r0:i64) -> i64 {
entry:
  %r1 = mul %r0, 2:i64
  ret %r1
}
fn main() -> i64 {
entry:
  %r0 = load i64, @answer
  %r1 = call double_it(%r0)
  ret %r1
}
|}
  in
  let m = Parser.parse src in
  Validate.check_module m;
  Alcotest.(check string) "name" "tiny" m.Ir.m_name;
  Alcotest.(check int) "structs" 1 (List.length m.Ir.m_structs);
  Alcotest.(check int) "globals" 2 (List.length m.Ir.m_globals);
  Alcotest.(check int) "functions" 2 (List.length m.Ir.m_funcs);
  let f = Ir.find_func_exn m "double_it" in
  Alcotest.(check int) "nregs" 2 f.Ir.f_nregs

let test_parse_control_flow () =
  let src =
    {|
module cf
fn classify(%r0:i64) -> i64 {
entry:
  switch %r0 [1 -> one; 2 -> two] default other
one:
  ret 100:i64
two:
  %r1 = cmp sgt %r0, 0:i64
  cbr %r1, one, other
other:
  unreachable
}
|}
  in
  let m = Parser.parse src in
  Validate.check_module m;
  let f = Ir.find_func_exn m "classify" in
  Alcotest.(check int) "blocks" 4 (List.length f.Ir.f_blocks)

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | _ -> Alcotest.fail "expected parse error"
    | exception Parser.Parse_error (line, _) ->
      Alcotest.(check bool) "line number positive" true (line > 0)
  in
  expect_error "nonsense line";
  expect_error "module m\nfn f() -> i64 {\nentry:\n  ret 1:i64\n";
  (* unterminated fn *)
  expect_error "module m\nfn f() -> i64 {\n  %r0 = add 1:i64, 2:i64\n}\n"
  (* instr outside block *)

let roundtrip (m : Ir.modul) =
  let printed = Pretty.modul_to_string m in
  let reparsed =
    try Parser.parse printed
    with Parser.Parse_error (line, msg) ->
      Alcotest.failf "%s: parse error at line %d: %s\n--- around:\n%s"
        m.Ir.m_name line msg
        (let lines = String.split_on_char '\n' printed in
         String.concat "\n"
           (List.filteri (fun i _ -> i >= line - 3 && i <= line + 1) lines))
  in
  Validate.check_module reparsed;
  let reprinted = Pretty.modul_to_string reparsed in
  Alcotest.(check string) (m.Ir.m_name ^ " fixpoint") printed reprinted

let test_roundtrip_workloads () =
  List.iter
    (fun (e : Registry.entry) -> roundtrip (e.Registry.e_build ()))
    Registry.spec;
  roundtrip (No_workloads.Chess.build ())

let tests =
  [
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse control flow" `Quick test_parse_control_flow;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip all workloads" `Quick
      test_roundtrip_workloads;
  ]
