(* IR-level tests: type helpers, builder structure, validator
   acceptance/rejection, pretty-printer sanity, builtin
   classification. *)

module B = No_ir.Builder
module Ir = No_ir.Ir
module Ty = No_ir.Ty
module Validate = No_ir.Validate
module Pretty = No_ir.Pretty
module Builtins = No_ir.Builtins

let test_ty_helpers () =
  Alcotest.(check bool) "i32 integer" true (Ty.is_integer Ty.I32);
  Alcotest.(check bool) "f64 float" true (Ty.is_float Ty.F64);
  Alcotest.(check bool) "ptr pointer" true (Ty.is_pointer (Ty.Ptr Ty.I8));
  Alcotest.(check bool) "fn ptr pointer" true
    (Ty.is_pointer (Ty.Fn_ptr (Ty.signature [] Ty.Void)));
  Alcotest.(check bool) "struct not scalar" false
    (Ty.is_scalar (Ty.Struct "S"));
  Alcotest.(check int) "i16 bits" 16 (Ty.scalar_bits Ty.I16);
  Alcotest.(check bool) "equal nested" true
    (Ty.equal (Ty.Ptr (Ty.Array (Ty.I8, 3))) (Ty.Ptr (Ty.Array (Ty.I8, 3))));
  Alcotest.(check bool) "unequal arity" false
    (Ty.equal (Ty.Array (Ty.I8, 3)) (Ty.Array (Ty.I8, 4)));
  Alcotest.(check string) "pp" "[4 x i64*]*"
    (Ty.to_string (Ty.Ptr (Ty.Array (Ty.Ptr Ty.I64, 4))))

let test_builder_blocks () =
  let t = B.create "blocks" in
  let f =
    B.func t "f" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        let x = List.nth args 0 in
        let c = B.cmp fb Ir.Sgt x (B.i64 0) in
        B.if_ fb c
          ~then_:(fun () -> B.ret fb (Some (B.i64 1)))
          ~else_:(fun () -> B.ret fb (Some (B.i64 0)))
          ();
        (* join block unreachable but well-formed *)
        B.ret fb (Some (B.i64 99)))
  in
  Alcotest.(check string) "entry first" "entry"
    (Ir.entry_block f).Ir.label;
  Alcotest.(check int) "block count" 4 (List.length f.Ir.f_blocks);
  Validate.check_module (B.finish t)

let test_builder_catches_missing_return () =
  let t = B.create "noret" in
  match
    B.func t "f" ~params:[] ~ret:Ty.I64 (fun _fb _ -> ())
  with
  | _ -> Alcotest.fail "expected missing-return error"
  | exception Invalid_argument _ -> ()

let expect_ill_typed name build =
  let m = build () in
  match Validate.check_module m with
  | () -> Alcotest.failf "%s: expected Ill_typed" name
  | exception Validate.Ill_typed _ -> ()

let test_validator_rejections () =
  (* type mismatch in binop *)
  expect_ill_typed "int+float" (fun () ->
      let t = B.create "bad1" in
      let _ =
        B.func t "f" ~params:[] ~ret:Ty.I64 (fun fb _ ->
            B.ret fb (Some (B.iadd fb (B.i64 1) (B.f64 2.0))))
      in
      B.finish t);
  (* branch to unknown label *)
  expect_ill_typed "bad label" (fun () ->
      let f =
        {
          Ir.f_name = "f";
          Ir.f_params = [];
          Ir.f_ret = Ty.Void;
          Ir.f_blocks =
            [ { Ir.label = "entry"; Ir.instrs = []; Ir.term = Ir.Br "nowhere" } ];
          Ir.f_nregs = 0;
        }
      in
      { Ir.m_name = "bad2"; Ir.m_structs = []; Ir.m_globals = [];
        Ir.m_funcs = [ f ]; Ir.m_externs = []; Ir.m_uva_globals = [] });
  (* return type mismatch *)
  expect_ill_typed "wrong return" (fun () ->
      let t = B.create "bad3" in
      let _ =
        B.func t "f" ~params:[] ~ret:Ty.F64 (fun fb _ ->
            B.ret fb (Some (B.i64 1)))
      in
      B.finish t);
  (* register retyped *)
  expect_ill_typed "register retyped" (fun () ->
      let f =
        {
          Ir.f_name = "f";
          Ir.f_params = [];
          Ir.f_ret = Ty.Void;
          Ir.f_blocks =
            [
              {
                Ir.label = "entry";
                Ir.instrs =
                  [
                    Ir.Assign (0, Ir.Bin (Ir.Add, Ir.Int (1L, Ty.I64), Ir.Int (2L, Ty.I64)));
                    Ir.Assign (0, Ir.Bin (Ir.Fadd, Ir.Float (1.0, Ty.F64), Ir.Float (2.0, Ty.F64)));
                  ];
                Ir.term = Ir.Ret None;
              };
            ];
          Ir.f_nregs = 1;
        }
      in
      { Ir.m_name = "bad4"; Ir.m_structs = []; Ir.m_globals = [];
        Ir.m_funcs = [ f ]; Ir.m_externs = []; Ir.m_uva_globals = [] });
  (* store type mismatch *)
  expect_ill_typed "store mismatch" (fun () ->
      let t = B.create "bad5" in
      let _ =
        B.func t "f" ~params:[] ~ret:Ty.Void (fun fb _ ->
            let p = B.alloca fb Ty.I32 1 in
            B.store fb Ty.I64 (B.i64 1) p;
            B.ret_void fb)
      in
      B.finish t);
  (* global initializer arity *)
  expect_ill_typed "bad init" (fun () ->
      let t = B.create "bad6" in
      B.global t "g" (Ty.Array (Ty.I64, 2)) (Ir.Array_init [ Ir.Int_init (1L, Ty.I64) ]);
      B.finish t)

let test_validator_accepts_loop_reg () =
  (* A loop header reads the induction register assigned later in
     layout order: the two-pass collection must handle it. *)
  let t = B.create "loopreg" in
  let _ =
    B.func t "f" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let acc = B.alloca fb Ty.I64 1 in
        B.store fb Ty.I64 (B.i64 0) acc;
        B.for_ fb ~name:"l" ~from:(B.i64 0) ~below:(B.i64 4) (fun iv ->
            let c = B.load fb Ty.I64 acc in
            B.store fb Ty.I64 (B.iadd fb c iv) acc);
        B.ret fb (Some (B.load fb Ty.I64 acc)))
  in
  Validate.check_module (B.finish t)

let test_pretty_output () =
  let t = B.create "pretty" in
  B.global t "g" Ty.I64 (Ir.Int_init (5L, Ty.I64));
  let _ =
    B.func t "f" ~params:[ Ty.I64 ] ~ret:Ty.I64 (fun fb args ->
        B.ret fb (Some (B.iadd fb (List.nth args 0) (B.i64 1))))
  in
  let text = Pretty.modul_to_string (B.finish t) in
  let contains needle =
    let nlen = String.length needle and hlen = String.length text in
    let rec go i =
      i + nlen <= hlen && (String.equal (String.sub text i nlen) needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "module pretty"; "global @g"; "fn f"; "add" ]

let test_builtin_classification () =
  Alcotest.(check bool) "scan machine specific" true
    (Builtins.is_machine_specific "scan_i64");
  Alcotest.(check bool) "syscall machine specific" true
    (Builtins.is_machine_specific "syscall");
  Alcotest.(check bool) "unknown machine specific" true
    (Builtins.is_machine_specific "mystery_extern");
  Alcotest.(check bool) "print not specific" false
    (Builtins.is_machine_specific "print_f64");
  Alcotest.(check bool) "file io not specific" false
    (Builtins.is_machine_specific "f_read");
  Alcotest.(check (option string)) "remote print" (Some "r_print_f64")
    (Builtins.remote_counterpart "print_f64");
  Alcotest.(check (option string)) "remote read" (Some "rf_read")
    (Builtins.remote_counterpart "f_read");
  Alcotest.(check (option string)) "no remote scan" None
    (Builtins.remote_counterpart "scan_i64")

let test_gep_result_ty () =
  let move =
    { Ir.s_name = "Move";
      Ir.s_fields = [ ("from", Ty.I8); ("score", Ty.F64) ] }
  in
  let structs _ = move in
  Alcotest.(check bool) "field" true
    (Ty.equal Ty.F64
       (Ir.gep_result_ty ~structs (Ty.Struct "Move") [ Ir.Field "score" ]));
  Alcotest.(check bool) "index then field" true
    (Ty.equal Ty.I8
       (Ir.gep_result_ty ~structs (Ty.Struct "Move")
          [ Ir.Index (Ir.Int (2L, Ty.I64)); Ir.Field "from" ]));
  Alcotest.(check bool) "array elem" true
    (Ty.equal Ty.I32
       (Ir.gep_result_ty ~structs (Ty.Array (Ty.I32, 8))
          [ Ir.Index (Ir.Int (1L, Ty.I64)) ]))

let tests =
  [
    Alcotest.test_case "ty helpers" `Quick test_ty_helpers;
    Alcotest.test_case "builder blocks" `Quick test_builder_blocks;
    Alcotest.test_case "builder missing return" `Quick
      test_builder_catches_missing_return;
    Alcotest.test_case "validator rejections" `Quick test_validator_rejections;
    Alcotest.test_case "validator loop registers" `Quick
      test_validator_accepts_loop_reg;
    Alcotest.test_case "pretty output" `Quick test_pretty_output;
    Alcotest.test_case "builtin classification" `Quick
      test_builtin_classification;
    Alcotest.test_case "gep result type" `Quick test_gep_result_ty;
  ]
