(* The paper's running example, end to end: the chess game of
   Figure 3 / Table 1 / Table 3.

     dune exec examples/chess_ai.exe

   Shows the pieces of the compile pipeline on the example the paper
   uses to explain them: the profile, the filter verdicts, the
   Equation-1 estimation table, the partitioned server module, and a
   turn-by-turn interactive game where every AI move is offloaded. *)

open No_prelude.Prelude

let () =
  Fmt.pr "=== compiling the chess application ===@.";
  let compiled =
    Compiler.compile
      ~profile_script:(Chess.script ~depth:4 ~turns:2)
      ~eval_scale:4.0 (Chess.build ())
  in

  Fmt.pr "@.--- hot function/loop profile (top 6) ---@.";
  List.iteri
    (fun i (s : Profiler.sample) ->
      if i < 6 then
        Fmt.pr "  %-12s %-5s %6.3f s, %d invocations, %d KB@."
          s.Profiler.s_name
          (match s.Profiler.s_kind with
          | Profiler.Func -> "fn"
          | Profiler.Loop -> "loop")
          s.Profiler.s_time s.Profiler.s_invocations
          (s.Profiler.s_mem_bytes / 1024))
    compiled.Compiler.c_samples;

  Fmt.pr "@.--- machine-specific filter ---@.";
  List.iter
    (fun name ->
      let verdict =
        match Filter.verdict_of compiled.Compiler.c_verdicts name with
        | Some v -> (
          match v.Filter.v_machine_specific with
          | Some reason -> Filter.reason_to_string reason
          | None -> "offloadable")
        | None -> "?"
      in
      Fmt.pr "  %-14s %s@." name verdict)
    [ "main"; "runGame"; "getPlayerTurn"; "getAITurn"; "evalQueen" ];

  Fmt.pr "@.--- Table 3 (Equation 1 on this machine pair) ---@.";
  Table.print (Evaluation.table3 ());

  Fmt.pr "@.--- server partition ---@.";
  let server = compiled.Compiler.c_output.Pipeline.o_server in
  Fmt.pr "functions kept on the server: %a@."
    Fmt.(list ~sep:comma string)
    (List.map (fun (f : Ir.func) -> f.Ir.f_name) server.Ir.m_funcs);
  Fmt.pr "removed as unused (Figure 3(c) line 66): %a@."
    Fmt.(list ~sep:comma string)
    compiled.Compiler.c_output.Pipeline.o_stats.Pipeline.st_removed_functions;
  Fmt.pr "@.listener generated for the server (Figure 3(c) lines 27-41):@.%s@."
    (Pretty.func_to_string
       (Ir.find_func_exn server No_transform.Partition.listener_name));

  Fmt.pr "@.=== playing 3 turns at depth 7 ===@.";
  let script = Chess.script ~depth:7 ~turns:3 in
  let local = Local_run.run ~script compiled.Compiler.c_original in
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Fmt.pr "local:     %.2f s, %.0f mJ@." local.Local_run.lr_total_s
    local.Local_run.lr_energy_mj;
  Fmt.pr "offloaded: %.2f s, %.0f mJ (%d offloads, %d fn-ptr translations)@."
    report.Session.rep_total_s report.Session.rep_energy_mj
    report.Session.rep_offloads report.Session.rep_fnptr_translations;
  Fmt.pr "identical output: %b, speedup %.2fx@."
    (String.equal local.Local_run.lr_console report.Session.rep_console)
    (local.Local_run.lr_total_s /. report.Session.rep_total_s)
