(* Surviving a flaky network: fault injection and transparent recovery.

     dune exec examples/flaky_network.exe

   The same workload (458.sjeng at profile scale) runs three times:
   fault-free, through a link outage that opens mid-offload, and with
   the server crashing outright.  The fault plan is a deterministic,
   seeded schedule — re-running with the same plan reproduces the same
   faults — and the runtime absorbs every one of them: short outages
   ride on the per-RPC retry/backoff loop, while a dead server triggers
   rollback of the mobile state to the offload-start snapshot and a
   local replay of the task.  In every case the console transcript is
   byte-for-byte the one a pure-local run produces; what varies is the
   time (and battery) the recovery cost. *)

open No_prelude.Prelude

let plan_exn s =
  match Fault_plan.parse s with
  | Ok p -> p
  | Error msg -> failwith (s ^ ": " ^ msg)

let () =
  let entry = Option.get (Registry.by_name "458.sjeng") in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let local =
    Local_run.run ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_original
  in
  let run faults =
    let config = { (Session.default_config ()) with Session.faults } in
    let session =
      Session.create ~config ~script:entry.Registry.e_profile_script
        ~files:entry.Registry.e_files compiled.Compiler.c_output
        ~seeds:compiled.Compiler.c_seeds
    in
    Session.run session
  in
  let clean = run None in
  let t = clean.Session.rep_total_s in
  let table =
    Table.create
      ~title:"458.sjeng on a flaky network (every run survives)"
      [ "scenario"; "exec (s)"; "retries"; "fallbacks"; "recovery (s)";
        "console ok" ]
  in
  let row label (r : Session.report) =
    Table.add_row table
      [
        label;
        Table.cell_f r.Session.rep_total_s;
        Table.cell_i r.Session.rep_retries;
        Table.cell_i r.Session.rep_fallbacks;
        Table.cell_f r.Session.rep_recovery_s;
        (if String.equal r.Session.rep_console local.Local_run.lr_console
         then "yes" else "NO");
      ]
  in
  row "fault-free" clean;
  row "link outage mid-offload"
    (run
       (Some
          (plan_exn
             (Printf.sprintf "outage=%.3f:%.3f,seed=42" (0.3 *. t)
                (0.5 *. t)))));
  row "server crash"
    (run (Some (plan_exn (Printf.sprintf "crash=%.3f" (0.4 *. t)))));
  Table.print table;
  Fmt.pr
    "@.Outages are absorbed by deadline + exponential backoff; a dead \
     server rolls the@.mobile state back to the offload-start snapshot \
     and replays the task locally.@."
