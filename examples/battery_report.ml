(* Battery behaviour of an offloaded run (the Figure 8 view).

     dune exec examples/battery_report.exe

   Runs 458.sjeng offloaded over the fast network and prints its power
   timeline: the three think() invocations appear as transmit/receive
   spikes around long low-power waits — exactly the Figure 8(a) shape
   — followed by the per-state energy budget. *)

open No_prelude.Prelude

let bar mw =
  let width = int_of_float (mw /. 100.0) in
  String.make (min width 60) '#'

let () =
  let entry = Option.get (Registry.by_name "458.sjeng") in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script:entry.Registry.e_eval_script ~files:entry.Registry.e_files
      compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  let battery = Session.battery session in
  Fmt.pr "458.sjeng offloaded over 802.11ac: %.2f s, %.0f mJ, %d offloads@.@."
    report.Session.rep_total_s report.Session.rep_energy_mj
    report.Session.rep_offloads;

  Fmt.pr "--- power over time (each row = 1/48 of the run) ---@.";
  let samples =
    Battery.resample battery ~period_s:(report.Session.rep_total_s /. 48.0)
  in
  List.iter
    (fun (t, mw) -> Fmt.pr "%7.2fs %5.0f mW %s@." t mw (bar mw))
    samples;

  Fmt.pr "@.--- time and energy by state ---@.";
  List.iter
    (fun (state, seconds) ->
      let mw =
        Power_model.draw_mw (Power_model.galaxy_s5 ~fast_radio:true) state
      in
      Fmt.pr "  %-12s %7.2f s  %8.0f mJ@."
        (Power_model.state_to_string state)
        seconds (mw *. seconds))
    (List.sort
       (fun (_, a) (_, b) -> compare b a)
       (Battery.time_by_state battery));

  (* Compare with staying local. *)
  let local =
    Local_run.run ~script:entry.Registry.e_eval_script
      ~files:entry.Registry.e_files compiled.Compiler.c_original
  in
  Fmt.pr "@.local execution would draw %.0f mJ -> offloading saves %.1f%%@."
    local.Local_run.lr_energy_mj
    (100.0
    *. (1.0 -. (report.Session.rep_energy_mj /. local.Local_run.lr_energy_mj)))
