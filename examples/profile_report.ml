(* The trace-analysis layer, end to end.

     dune exec examples/profile_report.exe

   458.sjeng (profile scale) runs once with a ring-buffer sink
   attached, and everything below is derived from that single captured
   event stream — nothing re-instruments the run.  The stream is
   persisted to a versioned line-per-event JSON file and read back
   (the round trip is bit-exact), folded into a causal span tree whose
   root equals the run's wall clock, bucketed into latency histograms,
   and audited: every Equation-1 prediction is held against the
   measured outcome of that same decision.  A collapsed-stack
   flamegraph lands next to the trace file.

   The second half repeats the exercise on 164.gzip under a bandwidth
   collapse that starts before the first offload decision: the
   estimator prices the transfer at nominal bandwidth, offloads, and
   the audit catches the false positive. *)

open No_prelude.Prelude

let compile name =
  let entry = Option.get (Registry.by_name name) in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  (entry, compiled)

let traced_run ?faults (entry : Registry.entry) compiled =
  let ring = Trace.Ring.create ~capacity:(1 lsl 20) () in
  let metrics = Trace.Metrics.create () in
  let config =
    { (Session.default_config ()) with
      Session.trace =
        Trace.fan_out [ Trace.Ring.sink ring; Trace.Metrics.sink metrics ];
      Session.faults }
  in
  let session =
    Session.create ~config ~script:entry.Registry.e_profile_script
      ~files:entry.Registry.e_files compiled.Compiler.c_output
      ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  (report, Trace.Ring.events ring, metrics)

let print_audit rows =
  let table =
    Table.create ~title:"Estimator audit: prediction vs. measurement"
      [ "t (s)"; "target"; "decision"; "predicted (s)"; "measured (s)";
        "verdict" ]
  in
  List.iter
    (fun (r : Audit.row) ->
      Table.add_row table
        [
          Printf.sprintf "%.3f" r.Audit.a_ts;
          r.Audit.a_target;
          (if r.Audit.a_decision then "offload" else "refuse");
          Table.cell_f r.Audit.a_predicted_gain_s;
          (match r.Audit.a_measured_gain_s with
          | None -> "-"
          | Some g ->
            Printf.sprintf "%.4f%s" g (if r.Audit.a_proxied then "*" else ""));
          Audit.verdict_to_string r.Audit.a_verdict;
        ])
    rows;
  Table.print table;
  let s = Audit.summarize rows in
  Fmt.pr "verdicts: %d TP, %d FP, %d TN, %d FN, %d unverified@."
    s.Audit.s_true_pos s.Audit.s_false_pos s.Audit.s_true_neg
    s.Audit.s_false_neg s.Audit.s_unverified;
  if s.Audit.s_estimates - s.Audit.s_unverified > 0 then
    Fmt.pr "mean gain error: %.4f s (%.1f%% relative)@."
      s.Audit.s_mean_abs_err_s
      (100.0 *. s.Audit.s_mean_rel_err)

let () =
  (* 1. Capture one run and persist the raw stream. *)
  let entry, compiled = compile "458.sjeng" in
  let report, events, metrics = traced_run entry compiled in
  let trace_path = Filename.temp_file "profile_report" ".jsonl" in
  Trace_file.save trace_path events;
  let reloaded =
    match Trace_file.load trace_path with
    | Ok evs -> evs
    | Error msg -> failwith ("reload failed: " ^ msg)
  in
  assert (reloaded = events);
  Fmt.pr "captured %d events over %.3f simulated seconds -> %s@."
    (List.length events) (Trace.Metrics.total_s metrics) trace_path;
  Fmt.pr "(reloading the file reproduces the event list bit-exactly)@.@.";

  (* 2. Fold the stream into a span tree.  Self times make the tree an
     accounting identity: the root's total is the wall clock, and every
     node's children + self equals its total. *)
  let root = Span.of_events events in
  Fmt.pr "Where the %.3f s went:@.@.%s@." root.Span.total_s
    (Flame.to_text root);

  (* 3. Latency histograms over the same stream. *)
  let offload = Hist.create () and transfer = Hist.create () in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Offload_end { span_s; _ } -> Hist.add offload span_s
      | Trace.Flush { transfer_s; codec_s; _ } ->
        Hist.add transfer (transfer_s +. codec_s)
      | _ -> ())
    events;
  let table =
    Table.create ~title:"Latency distributions"
      [ "event"; "n"; "p50 (s)"; "p95 (s)"; "p99 (s)"; "max (s)" ]
  in
  let hist_row name h =
    if Hist.count h > 0 then
      Table.add_row table
        [
          name;
          string_of_int (Hist.count h);
          Table.cell_f (Hist.quantile h 0.50);
          Table.cell_f (Hist.quantile h 0.95);
          Table.cell_f (Hist.quantile h 0.99);
          Table.cell_f (Hist.max h);
        ]
  in
  hist_row "offload span" offload;
  hist_row "flush (link + codec)" transfer;
  Table.print table;
  Fmt.pr "@.";

  (* 4. Audit the estimator against what actually happened. *)
  print_audit (Audit.of_events events);
  let flame_path = Filename.chop_suffix trace_path ".jsonl" ^ ".folded" in
  let oc = open_out flame_path in
  output_string oc (Flame.to_collapsed root);
  close_out oc;
  Fmt.pr "@.collapsed flamegraph -> %s (open in speedscope.app)@." flame_path;
  ignore report;

  (* 5. Same audit, hostile conditions: 164.gzip moves real data, and a
     bandwidth collapse active from t=0 means the first decision is
     priced at nominal bandwidth.  The offload goes ahead, measures
     slower than local, and the audit flags the false positive; the
     bandwidth predictor then reprices later decisions. *)
  Fmt.pr "@.--- 164.gzip under a bandwidth collapse (x0.01 from t=0) ---@.@.";
  let entry, compiled = compile "164.gzip" in
  let faults =
    match Fault_plan.parse "collapse=0.0:0.01,seed=7" with
    | Ok p -> Some p
    | Error msg -> failwith msg
  in
  let _report, events, _metrics = traced_run ?faults entry compiled in
  print_audit (Audit.of_events events);
  Fmt.pr
    "@.The estimator believed the nominal link; the wire did not \
     cooperate.  The@.audit is how you find out which predictions to \
     stop trusting.@."
