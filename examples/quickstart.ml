(* Quickstart: write a tiny native program against the IR builder,
   compile it with Native Offloader, and run it locally and offloaded.

     dune exec examples/quickstart.exe

   The program multiplies two matrices; the hot kernel [matmul] is
   found automatically (no annotations), everything else stays on the
   phone. *)

open No_prelude.Prelude
module B = No_ir.Builder
module W = No_workloads.Support

(* 1. The "native application": a matrix multiply whose inputs come
   from the console and whose result checksum is printed. *)
let build_program () =
  let t = B.create "quickstart" in
  B.global t "a" W.f64p Ir.Zero_init;
  B.global t "b" W.f64p Ir.Zero_init;
  B.global t "c" W.f64p Ir.Zero_init;

  let _ =
    B.func t "matmul" ~params:[ Ty.I64 ] ~ret:Ty.F64 (fun fb args ->
        let n = List.nth args 0 in
        let a = B.load fb W.f64p (Ir.Global "a") in
        let b = B.load fb W.f64p (Ir.Global "b") in
        let c = B.load fb W.f64p (Ir.Global "c") in
        B.for_ fb ~name:"rows" ~from:(B.i64 0) ~below:n (fun i ->
            B.for_ fb ~name:"cols" ~from:(B.i64 0) ~below:n (fun j ->
                let acc = B.alloca fb Ty.F64 1 in
                B.store fb Ty.F64 (B.f64 0.0) acc;
                B.for_ fb ~name:"inner" ~from:(B.i64 0) ~below:n (fun k ->
                    let aik =
                      B.load fb Ty.F64
                        (B.gep fb Ty.F64 a
                           [ Ir.Index (B.iadd fb (B.imul fb i n) k) ])
                    in
                    let bkj =
                      B.load fb Ty.F64
                        (B.gep fb Ty.F64 b
                           [ Ir.Index (B.iadd fb (B.imul fb k n) j) ])
                    in
                    let cur = B.load fb Ty.F64 acc in
                    B.store fb Ty.F64 (B.fadd fb cur (B.fmul fb aik bkj)) acc);
                B.store fb Ty.F64 (B.load fb Ty.F64 acc)
                  (B.gep fb Ty.F64 c
                     [ Ir.Index (B.iadd fb (B.imul fb i n) j) ])));
        W.sum_f64 fb ~name:"trace" c ~count:(B.imul fb n n) |> fun total ->
        B.ret fb (Some total))
  in
  let _ =
    B.func t "main" ~params:[] ~ret:Ty.I64 (fun fb _ ->
        let n = B.call fb "scan_i64" [] in
        let count = B.imul fb n n in
        let alloc () = W.malloc_f64 fb count in
        let a = alloc () and b = alloc () and c = alloc () in
        B.store fb W.f64p a (Ir.Global "a");
        B.store fb W.f64p b (Ir.Global "b");
        B.store fb W.f64p c (Ir.Global "c");
        W.fill_f64 fb ~name:"fill_a" a ~count ~scale:1e-3;
        W.fill_f64 fb ~name:"fill_b" b ~count ~scale:2e-3;
        let total = B.call fb "matmul" [ n ] in
        W.print_result_f64 t fb ~label:"checksum" total;
        B.ret fb (Some (B.i64 0)))
  in
  B.finish t

let () =
  let program = build_program () in

  (* 2. Compile: profile on a small input, filter, select via
     Equation 1, unify memory, partition. *)
  let compiled =
    Compiler.compile
      ~profile_script:(W.script_of_ints [ 8 ])
      ~eval_scale:30.0 program
  in
  Fmt.pr "selected offloading targets: %a@."
    Fmt.(list ~sep:comma string)
    compiled.Compiler.c_selection.No_estimator.Static_estimate.targets;

  (* 3. Run the evaluation input locally... *)
  let script = W.script_of_ints [ 24 ] in
  let local = Local_run.run ~script compiled.Compiler.c_original in
  Fmt.pr "local execution:     %6.2f s   console: %s"
    local.Local_run.lr_total_s local.Local_run.lr_console;

  (* 4. ...and offloaded over 802.11ac. *)
  let session =
    Session.create
      ~config:(Session.default_config ())
      ~script compiled.Compiler.c_output ~seeds:compiled.Compiler.c_seeds
  in
  let report = Session.run session in
  Fmt.pr "offloaded execution: %6.2f s   console: %s"
    report.Session.rep_total_s report.Session.rep_console;
  Fmt.pr "speedup: %.2fx, battery saved: %.1f%%, traffic: %d KB up / %d KB down@."
    (local.Local_run.lr_total_s /. report.Session.rep_total_s)
    (100.0
    *. (1.0 -. (report.Session.rep_energy_mj /. local.Local_run.lr_energy_mj)))
    (report.Session.rep_bytes_to_server / 1024)
    (report.Session.rep_bytes_to_mobile / 1024);
  assert (String.equal local.Local_run.lr_console report.Session.rep_console)
