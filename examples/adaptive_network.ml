(* Dynamic offloading decisions under changing network conditions.

     dune exec examples/adaptive_network.exe

   The same compiled binary (164.gzip, the paper's example of a
   communication-bound task) runs over progressively worse links; the
   runtime's dynamic estimator flips from offloading to local
   execution at the point where Equation 1 says the network no longer
   pays — "the dynamic performance estimation allows Native Offloader
   not to suffer from performance slowdown in an unexpected slow
   network environment." *)

open No_prelude.Prelude

let () =
  let entry = Option.get (Registry.by_name "164.gzip") in
  let compiled =
    Compiler.compile ~profile_script:entry.Registry.e_profile_script
      ~profile_files:entry.Registry.e_files
      ~eval_scale:entry.Registry.e_eval_scale
      (entry.Registry.e_build ())
  in
  let local =
    Local_run.run ~script:entry.Registry.e_eval_script
      ~files:entry.Registry.e_files compiled.Compiler.c_original
  in
  let table =
    Table.create
      ~title:"164.gzip under degrading networks (dynamic decisions)"
      [ "link"; "eff. Mbps"; "decision"; "exec (s)"; "vs local" ]
  in
  Table.add_row table
    [ "(local baseline)"; "-"; "-"; Table.cell_f local.Local_run.lr_total_s;
      "1.00" ];
  List.iter
    (fun link ->
      let config = Session.default_config ~link () in
      let session =
        Session.create ~config ~script:entry.Registry.e_eval_script
          ~files:entry.Registry.e_files compiled.Compiler.c_output
          ~seeds:compiled.Compiler.c_seeds
      in
      let r = Session.run session in
      Table.add_row table
        [
          link.Link.name;
          Table.cell_f ~digits:1 (Link.effective_bps link /. 1e6);
          (if r.Session.rep_offloads > 0 then "offload" else "stay local");
          Table.cell_f r.Session.rep_total_s;
          Table.cell_f (r.Session.rep_total_s /. local.Local_run.lr_total_s);
        ])
    [ Link.fast_wifi; Link.slow_wifi; Link.congested ];
  Table.print table;
  Fmt.pr
    "@.The crossover is Equation 1: gain = Tm(1 - 1/R) - 2(M/BW)N flips \
     sign as BW falls.@."
